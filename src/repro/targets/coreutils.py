"""A Coreutils-like suite of small UNIX utilities.

The paper's Fig. 11 experiment runs KLEE (1-worker Cloud9) and a 12-worker
Cloud9 on each of the 96 Coreutils for a fixed time budget and reports the
additional line coverage the cluster obtains.  This module provides a suite
of small utilities in the reproduction's language -- each one a little
command-line-style program over a symbolic input buffer -- that plays the
role of that benchmark suite.

Every utility is deliberately input-driven (flag parsing, tokenizing,
small loops) so that deeper exploration translates into more covered lines,
which is the property the Fig. 11 experiment measures.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro import lang as L
from repro.engine.config import EngineConfig
from repro.testing.symbolic_test import SymbolicTest

DEFAULT_INPUT_SIZE = 4


def _symbolic_main(body_builder: Callable[[], List[object]],
                   input_size: int) -> L.Function:
    """main(): allocate the symbolic input then run the utility body.

    The body can refer to ``argv`` (the symbolic buffer) and ``argc`` (its
    size).
    """
    body: List[object] = [
        L.decl("argv", L.call("cloud9_symbolic_buffer", L.const(input_size),
                              L.strconst("argv"))),
        L.decl("argc", L.const(input_size)),
    ]
    body.extend(body_builder())
    return L.func("main", [], *body)


def _program(name: str, body_builder: Callable[[], List[object]],
             helpers: List[L.Function] = (),
             input_size: int = DEFAULT_INPUT_SIZE) -> L.Program:
    return L.program(name, *helpers, _symbolic_main(body_builder, input_size))


# -- individual utilities -----------------------------------------------------------


def _echo_body() -> List[object]:
    return [
        L.decl("i", 0),
        L.decl("newline", 1),
        L.decl("escapes", 0),
        L.decl("out", 0),
        # Flag parsing: -n suppresses the newline, -e enables escapes.
        L.if_(L.eq(L.index(L.var("argv"), 0), ord("-")), [
            L.if_(L.eq(L.index(L.var("argv"), 1), ord("n")),
                  [L.assign("newline", 0), L.assign("i", 2)]),
            L.if_(L.eq(L.index(L.var("argv"), 1), ord("e")),
                  [L.assign("escapes", 1), L.assign("i", 2)]),
        ]),
        L.while_(L.lt(L.var("i"), L.var("argc")),
            L.decl("c", L.index(L.var("argv"), L.var("i"))),
            L.if_(L.land(L.var("escapes"), L.eq(L.var("c"), ord("\\"))), [
                L.assign("i", L.add(L.var("i"), 2)),
                L.assign("out", L.add(L.var("out"), 1)),
                L.continue_(),
            ]),
            L.assign("out", L.add(L.var("out"), 1)),
            L.assign("i", L.add(L.var("i"), 1)),
        ),
        L.ret(L.add(L.var("out"), L.var("newline"))),
    ]


def _cat_body() -> List[object]:
    return [
        L.decl("number_lines", 0),
        L.decl("start", 0),
        L.if_(L.land(L.eq(L.index(L.var("argv"), 0), ord("-")),
                     L.eq(L.index(L.var("argv"), 1), ord("n"))),
              [L.assign("number_lines", 1), L.assign("start", 2)]),
        L.decl("i", L.var("start")),
        L.decl("lines", 0),
        L.decl("bytes", 0),
        L.while_(L.lt(L.var("i"), L.var("argc")),
            L.decl("c", L.index(L.var("argv"), L.var("i"))),
            L.if_(L.eq(L.var("c"), ord("\n")),
                  [L.assign("lines", L.add(L.var("lines"), 1))]),
            L.assign("bytes", L.add(L.var("bytes"), 1)),
            L.assign("i", L.add(L.var("i"), 1)),
        ),
        L.if_(L.var("number_lines"), [L.ret(L.add(L.var("lines"), L.var("bytes")))]),
        L.ret(L.var("bytes")),
    ]


def _wc_body() -> List[object]:
    return [
        L.decl("i", 0),
        L.decl("words", 0),
        L.decl("lines", 0),
        L.decl("in_word", 0),
        L.while_(L.lt(L.var("i"), L.var("argc")),
            L.decl("c", L.index(L.var("argv"), L.var("i"))),
            L.if_(L.eq(L.var("c"), ord("\n")),
                  [L.assign("lines", L.add(L.var("lines"), 1))]),
            L.if_(L.lor(L.eq(L.var("c"), ord(" ")),
                        L.lor(L.eq(L.var("c"), ord("\n")),
                              L.eq(L.var("c"), ord("\t")))), [
                L.assign("in_word", 0),
            ], [
                L.if_(L.eq(L.var("in_word"), 0),
                      [L.assign("words", L.add(L.var("words"), 1))]),
                L.assign("in_word", 1),
            ]),
            L.assign("i", L.add(L.var("i"), 1)),
        ),
        L.ret(L.add(L.var("words"), L.var("lines"))),
    ]


def _seq_body() -> List[object]:
    return [
        L.decl("first", L.index(L.var("argv"), 0)),
        L.decl("last", L.index(L.var("argv"), 1)),
        L.if_(L.lor(L.lt(L.var("first"), ord("0")), L.gt(L.var("first"), ord("9"))),
              [L.ret(255)]),
        L.if_(L.lor(L.lt(L.var("last"), ord("0")), L.gt(L.var("last"), ord("9"))),
              [L.ret(255)]),
        L.decl("start", L.sub(L.var("first"), ord("0"))),
        L.decl("stop", L.sub(L.var("last"), ord("0"))),
        L.if_(L.gt(L.var("start"), L.var("stop")), [L.ret(0)]),
        L.decl("count", 0),
        L.while_(L.le(L.var("start"), L.var("stop")),
            L.assign("count", L.add(L.var("count"), 1)),
            L.assign("start", L.add(L.var("start"), 1)),
        ),
        L.ret(L.var("count")),
    ]


def _basename_body() -> List[object]:
    return [
        L.decl("i", 0),
        L.decl("last_slash", 0xFFFF),
        L.while_(L.lt(L.var("i"), L.var("argc")),
            L.if_(L.eq(L.index(L.var("argv"), L.var("i")), ord("/")),
                  [L.assign("last_slash", L.var("i"))]),
            L.assign("i", L.add(L.var("i"), 1)),
        ),
        L.if_(L.eq(L.var("last_slash"), 0xFFFF), [L.ret(0)]),
        L.if_(L.eq(L.var("last_slash"), L.sub(L.var("argc"), 1)), [L.ret(1)]),
        L.ret(L.sub(L.sub(L.var("argc"), L.var("last_slash")), 1)),
    ]


def _dirname_body() -> List[object]:
    return [
        L.decl("i", L.sub(L.var("argc"), 1)),
        L.while_(L.gt(L.var("i"), 0),
            L.if_(L.eq(L.index(L.var("argv"), L.var("i")), ord("/")),
                  [L.ret(L.var("i"))]),
            L.assign("i", L.sub(L.var("i"), 1)),
        ),
        L.if_(L.eq(L.index(L.var("argv"), 0), ord("/")), [L.ret(1)]),
        L.ret(0),
    ]


def _tr_body() -> List[object]:
    return [
        L.decl("from", L.index(L.var("argv"), 0)),
        L.decl("to", L.index(L.var("argv"), 1)),
        L.decl("i", 2),
        L.decl("translated", 0),
        L.while_(L.lt(L.var("i"), L.var("argc")),
            L.if_(L.eq(L.index(L.var("argv"), L.var("i")), L.var("from")),
                  [L.assign("translated", L.add(L.var("translated"), 1))]),
            L.assign("i", L.add(L.var("i"), 1)),
        ),
        L.if_(L.eq(L.var("from"), L.var("to")), [L.ret(0)]),
        L.ret(L.var("translated")),
    ]


def _head_body() -> List[object]:
    return [
        L.decl("limit", 2),
        L.decl("start", 0),
        L.if_(L.eq(L.index(L.var("argv"), 0), ord("-")), [
            L.decl("d", L.index(L.var("argv"), 1)),
            L.if_(L.land(L.ge(L.var("d"), ord("0")), L.le(L.var("d"), ord("9"))), [
                L.assign("limit", L.sub(L.var("d"), ord("0"))),
                L.assign("start", 2),
            ], [L.ret(255)]),
        ]),
        L.decl("i", L.var("start")),
        L.decl("emitted", 0),
        L.while_(L.land(L.lt(L.var("i"), L.var("argc")),
                        L.lt(L.var("emitted"), L.var("limit"))),
            L.if_(L.eq(L.index(L.var("argv"), L.var("i")), ord("\n")),
                  [L.assign("emitted", L.add(L.var("emitted"), 1))]),
            L.assign("i", L.add(L.var("i"), 1)),
        ),
        L.ret(L.var("emitted")),
    ]


def _cut_body() -> List[object]:
    return [
        L.decl("delim", L.index(L.var("argv"), 0)),
        L.decl("field", L.index(L.var("argv"), 1)),
        L.if_(L.lor(L.lt(L.var("field"), ord("1")), L.gt(L.var("field"), ord("3"))),
              [L.ret(255)]),
        L.decl("want", L.sub(L.var("field"), ord("0"))),
        L.decl("current", 1),
        L.decl("i", 2),
        L.decl("picked", 0),
        L.while_(L.lt(L.var("i"), L.var("argc")),
            L.if_(L.eq(L.index(L.var("argv"), L.var("i")), L.var("delim")), [
                L.assign("current", L.add(L.var("current"), 1)),
            ], [
                L.if_(L.eq(L.var("current"), L.var("want")),
                      [L.assign("picked", L.add(L.var("picked"), 1))]),
            ]),
            L.assign("i", L.add(L.var("i"), 1)),
        ),
        L.ret(L.var("picked")),
    ]


def _sort_body() -> List[object]:
    return [
        L.decl("buf", L.call("malloc", L.var("argc"))),
        L.expr_stmt(L.call("memcpy", L.var("buf"), L.var("argv"), L.var("argc"))),
        L.decl("i", 1),
        L.decl("swaps", 0),
        L.while_(L.lt(L.var("i"), L.var("argc")),
            L.decl("j", L.var("i")),
            L.while_(L.land(L.gt(L.var("j"), 0),
                            L.gt(L.index(L.var("buf"), L.sub(L.var("j"), 1)),
                                 L.index(L.var("buf"), L.var("j")))),
                L.decl("tmp", L.index(L.var("buf"), L.var("j"))),
                L.store(L.var("buf"), L.var("j"),
                        L.index(L.var("buf"), L.sub(L.var("j"), 1))),
                L.store(L.var("buf"), L.sub(L.var("j"), 1), L.var("tmp")),
                L.assign("swaps", L.add(L.var("swaps"), 1)),
                L.assign("j", L.sub(L.var("j"), 1)),
            ),
            L.assign("i", L.add(L.var("i"), 1)),
        ),
        L.ret(L.var("swaps")),
    ]


def _uniq_body() -> List[object]:
    return [
        L.decl("i", 1),
        L.decl("unique", 1),
        L.while_(L.lt(L.var("i"), L.var("argc")),
            L.if_(L.ne(L.index(L.var("argv"), L.var("i")),
                       L.index(L.var("argv"), L.sub(L.var("i"), 1))),
                  [L.assign("unique", L.add(L.var("unique"), 1))]),
            L.assign("i", L.add(L.var("i"), 1)),
        ),
        L.ret(L.var("unique")),
    ]


def _rev_body() -> List[object]:
    return [
        L.decl("buf", L.call("malloc", L.var("argc"))),
        L.decl("i", 0),
        L.while_(L.lt(L.var("i"), L.var("argc")),
            L.store(L.var("buf"), L.var("i"),
                    L.index(L.var("argv"), L.sub(L.sub(L.var("argc"), 1), L.var("i")))),
            L.assign("i", L.add(L.var("i"), 1)),
        ),
        L.decl("palindrome", 1),
        L.assign("i", 0),
        L.while_(L.lt(L.var("i"), L.var("argc")),
            L.if_(L.ne(L.index(L.var("buf"), L.var("i")),
                       L.index(L.var("argv"), L.var("i"))),
                  [L.assign("palindrome", 0)]),
            L.assign("i", L.add(L.var("i"), 1)),
        ),
        L.ret(L.var("palindrome")),
    ]


def _expand_body() -> List[object]:
    return [
        L.decl("i", 0),
        L.decl("column", 0),
        L.while_(L.lt(L.var("i"), L.var("argc")),
            L.decl("c", L.index(L.var("argv"), L.var("i"))),
            L.if_(L.eq(L.var("c"), ord("\t")), [
                L.assign("column", L.add(L.var("column"),
                                         L.sub(8, L.mod(L.var("column"), 8)))),
            ], [
                L.if_(L.eq(L.var("c"), ord("\n")), [L.assign("column", 0)],
                      [L.assign("column", L.add(L.var("column"), 1))]),
            ]),
            L.assign("i", L.add(L.var("i"), 1)),
        ),
        L.ret(L.var("column")),
    ]


def _expr_body() -> List[object]:
    return [
        # Evaluate "<digit> <op> <digit>" where op is +, -, *, /.
        L.decl("a", L.index(L.var("argv"), 0)),
        L.decl("op", L.index(L.var("argv"), 1)),
        L.decl("b", L.index(L.var("argv"), 2)),
        L.if_(L.lor(L.lt(L.var("a"), ord("0")), L.gt(L.var("a"), ord("9"))),
              [L.ret(255)]),
        L.if_(L.lor(L.lt(L.var("b"), ord("0")), L.gt(L.var("b"), ord("9"))),
              [L.ret(255)]),
        L.decl("x", L.sub(L.var("a"), ord("0"))),
        L.decl("y", L.sub(L.var("b"), ord("0"))),
        L.if_(L.eq(L.var("op"), ord("+")), [L.ret(L.add(L.var("x"), L.var("y")))]),
        L.if_(L.eq(L.var("op"), ord("-")), [L.ret(L.sub(L.var("x"), L.var("y")))]),
        L.if_(L.eq(L.var("op"), ord("*")), [L.ret(L.mul(L.var("x"), L.var("y")))]),
        L.if_(L.eq(L.var("op"), ord("/")), [
            L.if_(L.eq(L.var("y"), 0), [L.ret(254)]),
            L.ret(L.div(L.var("x"), L.var("y"))),
        ]),
        L.ret(255),
    ]


def _yes_body() -> List[object]:
    return [
        L.decl("i", 0),
        L.decl("emitted", 0),
        L.while_(L.lt(L.var("i"), 3),
            L.if_(L.eq(L.index(L.var("argv"), 0), ord("y")),
                  [L.assign("emitted", L.add(L.var("emitted"), 2))],
                  [L.assign("emitted", L.add(L.var("emitted"), 1))]),
            L.assign("i", L.add(L.var("i"), 1)),
        ),
        L.ret(L.var("emitted")),
    ]


def _od_body() -> List[object]:
    return [
        L.decl("i", 0),
        L.decl("printable", 0),
        L.decl("control", 0),
        L.decl("high", 0),
        L.while_(L.lt(L.var("i"), L.var("argc")),
            L.decl("c", L.index(L.var("argv"), L.var("i"))),
            L.if_(L.lt(L.var("c"), 32), [
                L.assign("control", L.add(L.var("control"), 1)),
            ], [
                L.if_(L.ge(L.var("c"), 127),
                      [L.assign("high", L.add(L.var("high"), 1))],
                      [L.assign("printable", L.add(L.var("printable"), 1))]),
            ]),
            L.assign("i", L.add(L.var("i"), 1)),
        ),
        L.ret(L.add(L.var("printable"), L.var("control"))),
    ]


_UTILITIES: Dict[str, Callable[[], List[object]]] = {
    "echo": _echo_body,
    "cat": _cat_body,
    "wc": _wc_body,
    "seq": _seq_body,
    "basename": _basename_body,
    "dirname": _dirname_body,
    "tr": _tr_body,
    "head": _head_body,
    "cut": _cut_body,
    "sort": _sort_body,
    "uniq": _uniq_body,
    "rev": _rev_body,
    "expand": _expand_body,
    "expr": _expr_body,
    "yes": _yes_body,
    "od": _od_body,
}


def utility_names() -> List[str]:
    return sorted(_UTILITIES)


def build_utility_program(name: str,
                          input_size: int = DEFAULT_INPUT_SIZE) -> L.Program:
    try:
        body_builder = _UTILITIES[name]
    except KeyError:
        raise ValueError("unknown utility %r (have: %s)"
                         % (name, ", ".join(utility_names()))) from None
    return _program(name, body_builder, input_size=input_size)


def make_utility_test(name: str, input_size: int = DEFAULT_INPUT_SIZE,
                      max_instructions: int = 50_000) -> SymbolicTest:
    """A symbolic test for one utility: fully symbolic argv/stdin bytes."""
    return SymbolicTest(
        name="coreutils-%s" % name,
        program=build_utility_program(name, input_size),
        engine_config=EngineConfig(max_instructions_per_path=max_instructions),
        use_posix_model=False,
    )


def coreutils_suite(input_size: int = DEFAULT_INPUT_SIZE
                    ) -> List[Tuple[str, SymbolicTest]]:
    """The whole suite, in deterministic order (the Fig. 11 benchmark set)."""
    return [(name, make_utility_test(name, input_size)) for name in utility_names()]
