"""A model of the ``test`` (``[``) UNIX utility.

Used together with ``printf`` in the useful-work scalability experiment
(Fig. 10).  The model evaluates a small expression language over a symbolic
argument vector: unary string/file predicates (``-n``, ``-z``, ``-e``,
``-f``, ``-d``), string equality/inequality and integer comparisons
(``-eq``, ``-ne``, ``-gt``, ``-lt``, ``-ge``, ``-le``), with the same
kind of token-classification branching the real utility performs.

The symbolic "argv" is encoded as a flat byte buffer of three
fixed-width slots (operator / operand / operand), which keeps the model
self-contained while preserving the branching structure.
"""

from __future__ import annotations

from repro import lang as L
from repro.engine.config import EngineConfig
from repro.testing.symbolic_test import SymbolicTest

# Layout of the symbolic argv buffer: 3 slots of 4 bytes each.
SLOT_SIZE = 4
SLOT_COUNT = 3


def build_program() -> L.Program:
    # parse_int(buf, base_off) -> value of a single decimal digit, or 255 on
    # a non-digit (the utility's "integer expression expected" error path).
    parse_int = L.func(
        "parse_int", ["argv", "base"],
        L.decl("c0", L.index(L.var("argv"), L.var("base"))),
        L.if_(L.lor(L.lt(L.var("c0"), ord("0")), L.gt(L.var("c0"), ord("9"))),
              [L.ret(255)]),
        L.ret(L.sub(L.var("c0"), ord("0"))),
    )

    # classify_operator(argv) -> 1..8 for the recognized binary operators
    # encoded in slot 1 ('=', '!', plus -eq/-ne/-gt/-lt/-ge/-le spelled as
    # '-' followed by the distinguishing letter), 0 otherwise.
    classify_operator = L.func(
        "classify_operator", ["argv"],
        L.decl("c0", L.index(L.var("argv"), SLOT_SIZE)),
        L.decl("c1", L.index(L.var("argv"), SLOT_SIZE + 1)),
        L.if_(L.eq(L.var("c0"), ord("=")), [L.ret(1)]),
        L.if_(L.land(L.eq(L.var("c0"), ord("!")), L.eq(L.var("c1"), ord("="))),
              [L.ret(2)]),
        L.if_(L.eq(L.var("c0"), ord("-")), [
            L.if_(L.eq(L.var("c1"), ord("e")), [L.ret(3)]),   # -eq
            L.if_(L.eq(L.var("c1"), ord("n")), [L.ret(4)]),   # -ne
            L.if_(L.eq(L.var("c1"), ord("g")), [
                L.decl("c2", L.index(L.var("argv"), SLOT_SIZE + 2)),
                L.if_(L.eq(L.var("c2"), ord("e")), [L.ret(7)]),   # -ge
                L.ret(5),                                          # -gt
            ]),
            L.if_(L.eq(L.var("c1"), ord("l")), [
                L.decl("c2", L.index(L.var("argv"), SLOT_SIZE + 2)),
                L.if_(L.eq(L.var("c2"), ord("e")), [L.ret(8)]),   # -le
                L.ret(6),                                          # -lt
            ]),
        ]),
        L.ret(0),
    )

    # unary_test(argv) -> 0/1 for -n/-z/-e style predicates on slot 2.
    unary_test = L.func(
        "unary_test", ["argv", "kind"],
        L.decl("first", L.index(L.var("argv"), 2 * SLOT_SIZE)),
        L.if_(L.eq(L.var("kind"), ord("n")),
              [L.ret(L.ne(L.var("first"), 0))]),
        L.if_(L.eq(L.var("kind"), ord("z")),
              [L.ret(L.eq(L.var("first"), 0))]),
        L.if_(L.eq(L.var("kind"), ord("e")),
              [L.ret(L.eq(L.var("first"), ord("/")))]),
        L.if_(L.eq(L.var("kind"), ord("f")),
              [L.ret(L.eq(L.var("first"), ord("f")))]),
        L.if_(L.eq(L.var("kind"), ord("d")),
              [L.ret(L.eq(L.var("first"), ord("d")))]),
        L.ret(2),   # unknown unary operator
    )

    string_equal = L.func(
        "string_equal", ["argv"],
        L.decl("i", 0),
        L.while_(L.lt(L.var("i"), 2),
            L.decl("a", L.index(L.var("argv"), L.var("i"))),
            L.decl("b", L.index(L.var("argv"), L.add(2 * SLOT_SIZE, L.var("i")))),
            L.if_(L.ne(L.var("a"), L.var("b")), [L.ret(0)]),
            L.assign("i", L.add(L.var("i"), 1)),
        ),
        L.ret(1),
    )

    evaluate = L.func(
        "evaluate", ["argv"],
        L.decl("first", L.index(L.var("argv"), 0)),
        # Unary form: "-X operand" (operator in slot 0).
        L.if_(L.eq(L.var("first"), ord("-")), [
            L.ret(L.call("unary_test", L.var("argv"),
                         L.index(L.var("argv"), 1))),
        ]),
        # Binary form: "operand OP operand".
        L.decl("op", L.call("classify_operator", L.var("argv"))),
        L.if_(L.eq(L.var("op"), 0), [L.ret(2)]),
        L.if_(L.eq(L.var("op"), 1), [L.ret(L.call("string_equal", L.var("argv")))]),
        L.if_(L.eq(L.var("op"), 2), [
            L.ret(L.sub(1, L.call("string_equal", L.var("argv")))),
        ]),
        # Numeric comparisons.
        L.decl("lhs", L.call("parse_int", L.var("argv"), 0)),
        L.decl("rhs", L.call("parse_int", L.var("argv"), 2 * SLOT_SIZE)),
        L.if_(L.lor(L.eq(L.var("lhs"), 255), L.eq(L.var("rhs"), 255)), [L.ret(2)]),
        L.if_(L.eq(L.var("op"), 3), [L.ret(L.eq(L.var("lhs"), L.var("rhs")))]),
        L.if_(L.eq(L.var("op"), 4), [L.ret(L.ne(L.var("lhs"), L.var("rhs")))]),
        L.if_(L.eq(L.var("op"), 5), [L.ret(L.gt(L.var("lhs"), L.var("rhs")))]),
        L.if_(L.eq(L.var("op"), 6), [L.ret(L.lt(L.var("lhs"), L.var("rhs")))]),
        L.if_(L.eq(L.var("op"), 7), [L.ret(L.ge(L.var("lhs"), L.var("rhs")))]),
        L.if_(L.eq(L.var("op"), 8), [L.ret(L.le(L.var("lhs"), L.var("rhs")))]),
        L.ret(2),
    )

    main = L.func(
        "main", [],
        L.decl("argv", L.call("cloud9_symbolic_buffer",
                              L.const(SLOT_SIZE * SLOT_COUNT),
                              L.strconst("argv"))),
        L.ret(L.call("evaluate", L.var("argv"))),
    )

    return L.program("testcmd", parse_int, classify_operator, unary_test,
                     string_equal, evaluate, main)


def make_symbolic_test(max_instructions: int = 100_000) -> SymbolicTest:
    """The Fig. 10 workload: fully symbolic ``test`` arguments."""
    return SymbolicTest(
        name="test-symbolic-argv",
        program=build_program(),
        engine_config=EngineConfig(max_instructions_per_path=max_instructions),
        use_posix_model=False,
    )
