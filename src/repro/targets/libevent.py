"""A model of libevent's event-notification core (Table 4, 10.2 KLOC).

libevent multiplexes callbacks over file descriptors: callers register
``(fd, callback)`` pairs with an event base and ``event_dispatch`` invokes
the callbacks whose descriptors become ready, as reported by the polling
backend (``select`` in the model, as in the paper's POSIX model).

The model keeps that structure:

* an *event table* of registered events (descriptor, callback id, pending
  flag, dispatch count);
* ``event_dispatch`` repeatedly polls the registered descriptors with the
  modeled ``select`` and invokes the matching handler for every ready one,
  until a full poll round finds nothing ready;
* two handlers drain one pipe each and tally what they read.

The test driver writes one symbolic byte into the first pipe and -- only for
half of the input space -- a second byte into the second pipe, so whether the
second callback runs at all depends on symbolic input.  Path assertions check
the dispatcher's core invariants: a callback never runs for an empty
descriptor, and every written byte is delivered to exactly one callback.
"""

from __future__ import annotations

from repro import lang as L
from repro.engine.config import EngineConfig
from repro.testing.symbolic_test import SymbolicTest

MAX_EVENTS = 4

# Event-table layout: 4 bytes per event in the arena.
EV_FD = 0
EV_CALLBACK = 1
EV_ACTIVE = 2
EV_CALLS = 3
EV_RECORD = 4

# Arena layout.
A_NUM_EVENTS = 0
A_TOTAL_DISPATCHED = 1
A_BYTES_A = 2          # bytes delivered to handler A
A_BYTES_B = 3          # bytes delivered to handler B
A_EVENTS = 4           # event records start here
ARENA_SIZE = A_EVENTS + MAX_EVENTS * EV_RECORD


def build_program(symbolic_trigger: bool = True) -> L.Program:
    """Build the libevent model with its two-pipe test driver."""

    # event_add(arena, fd, callback_id) -> slot index.
    event_add = L.func(
        "event_add", ["arena", "fd", "callback"],
        L.decl("slot", L.index(L.var("arena"), A_NUM_EVENTS)),
        L.if_(L.ge(L.var("slot"), MAX_EVENTS), [L.ret(255)]),
        L.decl("base", L.add(A_EVENTS, L.mul(L.var("slot"), EV_RECORD))),
        L.store(L.var("arena"), L.add(L.var("base"), EV_FD), L.var("fd")),
        L.store(L.var("arena"), L.add(L.var("base"), EV_CALLBACK), L.var("callback")),
        L.store(L.var("arena"), L.add(L.var("base"), EV_ACTIVE), 1),
        L.store(L.var("arena"), L.add(L.var("base"), EV_CALLS), 0),
        L.store(L.var("arena"), A_NUM_EVENTS, L.add(L.var("slot"), 1)),
        L.ret(L.var("slot")),
    )

    # event_del(arena, slot): deactivate one registration.
    event_del = L.func(
        "event_del", ["arena", "slot"],
        L.decl("base", L.add(A_EVENTS, L.mul(L.var("slot"), EV_RECORD))),
        L.store(L.var("arena"), L.add(L.var("base"), EV_ACTIVE), 0),
        L.ret(0),
    )

    # handler_a(arena, fd) / handler_b(arena, fd): drain one byte and tally it.
    handler_a = L.func(
        "handler_a", ["arena", "fd"],
        L.decl("buf", L.call("malloc", 1)),
        L.decl("n", L.call("read", L.var("fd"), L.var("buf"), 1)),
        L.assert_(L.eq(L.var("n"), 1), "handler A dispatched on an empty fd"),
        L.store(L.var("arena"), A_BYTES_A,
                L.add(L.index(L.var("arena"), A_BYTES_A), L.var("n"))),
        L.ret(L.var("n")),
    )

    handler_b = L.func(
        "handler_b", ["arena", "fd"],
        L.decl("buf", L.call("malloc", 1)),
        L.decl("n", L.call("read", L.var("fd"), L.var("buf"), 1)),
        L.assert_(L.eq(L.var("n"), 1), "handler B dispatched on an empty fd"),
        L.store(L.var("arena"), A_BYTES_B,
                L.add(L.index(L.var("arena"), A_BYTES_B), L.var("n"))),
        L.ret(L.var("n")),
    )

    # invoke(arena, slot): call the slot's handler and bump its counters.
    invoke = L.func(
        "invoke", ["arena", "slot"],
        L.decl("base", L.add(A_EVENTS, L.mul(L.var("slot"), EV_RECORD))),
        L.decl("fd", L.index(L.var("arena"), L.add(L.var("base"), EV_FD))),
        L.decl("cb", L.index(L.var("arena"), L.add(L.var("base"), EV_CALLBACK))),
        L.if_(L.eq(L.var("cb"), 1),
              [L.expr_stmt(L.call("handler_a", L.var("arena"), L.var("fd")))]),
        L.if_(L.eq(L.var("cb"), 2),
              [L.expr_stmt(L.call("handler_b", L.var("arena"), L.var("fd")))]),
        L.store(L.var("arena"), L.add(L.var("base"), EV_CALLS),
                L.add(L.index(L.var("arena"), L.add(L.var("base"), EV_CALLS)), 1)),
        L.store(L.var("arena"), A_TOTAL_DISPATCHED,
                L.add(L.index(L.var("arena"), A_TOTAL_DISPATCHED), 1)),
        L.ret(0),
    )

    # event_dispatch(arena) -> total number of callbacks invoked.
    #
    # Repeatedly polls the active descriptors; a poll round that finds nothing
    # ready ends the loop (the driver has no timers, so nothing new can
    # arrive once the pipes are drained).
    event_dispatch = L.func(
        "event_dispatch", ["arena"],
        L.decl("progress", 1),
        L.while_(L.var("progress"),
            L.assign("progress", 0),
            L.decl("count", L.index(L.var("arena"), A_NUM_EVENTS)),
            L.decl("fds", L.call("malloc", MAX_EVENTS)),
            L.decl("slots", L.call("malloc", MAX_EVENTS)),
            L.decl("n", 0),
            L.decl("s", 0),
            L.while_(L.lt(L.var("s"), L.var("count")),
                L.decl("base", L.add(A_EVENTS, L.mul(L.var("s"), EV_RECORD))),
                L.if_(L.index(L.var("arena"), L.add(L.var("base"), EV_ACTIVE)), [
                    L.store(L.var("fds"), L.var("n"),
                            L.index(L.var("arena"), L.add(L.var("base"), EV_FD))),
                    L.store(L.var("slots"), L.var("n"), L.var("s")),
                    L.assign("n", L.add(L.var("n"), 1)),
                ]),
                L.assign("s", L.add(L.var("s"), 1)),
            ),
            L.if_(L.eq(L.var("n"), 0), [L.break_()]),
            # timeout == 0: poll without blocking.
            L.decl("mask", L.call("select", L.var("fds"), L.var("n"), 0, 0, 0)),
            L.decl("i", 0),
            L.while_(L.lt(L.var("i"), L.var("n")),
                L.if_(L.band(L.shr(L.var("mask"), L.var("i")), 1), [
                    L.expr_stmt(L.call("invoke", L.var("arena"),
                                       L.index(L.var("slots"), L.var("i")))),
                    L.assign("progress", 1),
                ]),
                L.assign("i", L.add(L.var("i"), 1)),
            ),
        ),
        L.ret(L.index(L.var("arena"), A_TOTAL_DISPATCHED)),
    )

    # main: two pipes, two registered events, a driver that conditionally
    # writes to the second pipe, then the dispatch loop plus invariants.
    body = [
        L.decl("arena", L.call("malloc", ARENA_SIZE)),
        L.decl("pipe_a", L.call("malloc", 2)),
        L.decl("pipe_b", L.call("malloc", 2)),
        L.expr_stmt(L.call("pipe", L.var("pipe_a"))),
        L.expr_stmt(L.call("pipe", L.var("pipe_b"))),
        L.decl("a_read", L.index(L.var("pipe_a"), 0)),
        L.decl("a_write", L.index(L.var("pipe_a"), 1)),
        L.decl("b_read", L.index(L.var("pipe_b"), 0)),
        L.decl("b_write", L.index(L.var("pipe_b"), 1)),
        L.expr_stmt(L.call("event_add", L.var("arena"), L.var("a_read"), 1)),
        L.expr_stmt(L.call("event_add", L.var("arena"), L.var("b_read"), 2)),
    ]
    if symbolic_trigger:
        body += [
            L.decl("data", L.call("cloud9_symbolic_buffer", 1, L.strconst("event"))),
            L.decl("expected_b", 0),
            L.expr_stmt(L.call("write", L.var("a_write"), L.var("data"), 1)),
            # Only inputs whose low bit is set also trigger the second event.
            L.if_(L.band(L.index(L.var("data"), 0), 1), [
                L.expr_stmt(L.call("write", L.var("b_write"), L.var("data"), 1)),
                L.assign("expected_b", 1),
            ]),
        ]
    else:
        body += [
            L.decl("data", L.strconst("x")),
            L.decl("expected_b", 1),
            L.expr_stmt(L.call("write", L.var("a_write"), L.var("data"), 1)),
            L.expr_stmt(L.call("write", L.var("b_write"), L.var("data"), 1)),
        ]
    body += [
        L.decl("dispatched", L.call("event_dispatch", L.var("arena"))),
        # Invariants: handler A saw exactly the byte written to pipe A, and
        # handler B ran exactly when the driver wrote to pipe B.
        L.assert_(L.eq(L.index(L.var("arena"), A_BYTES_A), 1),
                  "handler A did not consume exactly one byte"),
        L.assert_(L.eq(L.index(L.var("arena"), A_BYTES_B), L.var("expected_b")),
                  "handler B dispatch count does not match the driver"),
        L.assert_(L.eq(L.var("dispatched"),
                       L.add(1, L.var("expected_b"))),
                  "total dispatch count is wrong"),
        L.expr_stmt(L.call("event_del", L.var("arena"), 0)),
        L.expr_stmt(L.call("event_del", L.var("arena"), 1)),
        L.ret(L.var("dispatched")),
    ]
    main = L.func("main", [], *body)

    return L.program("libevent", event_add, event_del, handler_a, handler_b,
                     invoke, event_dispatch, main)


def make_concrete_test() -> SymbolicTest:
    """Both pipes written concretely: a single deterministic dispatch path."""
    return SymbolicTest(name="libevent-concrete",
                        program=build_program(symbolic_trigger=False))


def make_symbolic_test(max_instructions: int = 200_000) -> SymbolicTest:
    """Symbolic trigger byte: the set of fired events depends on the input."""
    return SymbolicTest(
        name="libevent-symbolic-trigger",
        program=build_program(symbolic_trigger=True),
        engine_config=EngineConfig(max_instructions_per_path=max_instructions),
    )
