"""A model of pbzip2, the parallel block-compression utility (Table 4).

pbzip2 splits its input into blocks, compresses the blocks on worker threads
and reassembles the compressed stream in block order.  The model keeps that
structure -- a work queue drained by ``NUM_WORKERS`` pthreads, per-block
output slots, a completion condition variable -- and replaces the bzip2
entropy coder with run-length encoding, which preserves the part that matters
for symbolic testing: the output depends on byte-equality comparisons over
the (symbolic) input, and the block reassembly must put every block back in
its original position.

The end-to-end assertion -- decompressing the reassembled stream yields the
original input -- runs on every explored path, so an exhaustive run over a
partially-symbolic input checks the compressor for a whole family of inputs,
across thread interleavings when schedule forking is enabled.
"""

from __future__ import annotations

from repro import lang as L
from repro.engine.config import EngineConfig
from repro.engine.state import ExecutionState
from repro.posix.api import add_concrete_file
from repro.posix.buffers import BlockBuffer
from repro.posix.data import FileNode, posix_of
from repro.testing.symbolic_test import SymbolicTest

BLOCK_SIZE = 3
NUM_BLOCKS = 2
FILE_SIZE = BLOCK_SIZE * NUM_BLOCKS
NUM_WORKERS = 2

# Worst-case RLE output for one block: (count, byte) per input byte.
MAX_BLOCK_OUT = 2 * BLOCK_SIZE

# Arena layout (a single malloc'd buffer shared by all threads of the process).
A_MUTEX = 0          # mutex handle
A_NOT_EMPTY = 1      # "work available" condition variable handle
A_DONE = 2           # "all blocks compressed" condition variable handle
A_HEAD = 3           # next block index to hand to a worker
A_PRODUCED = 4       # number of blocks published by the reader
A_COMPLETED = 5      # number of blocks fully compressed
A_TOTAL = 6          # total number of blocks
A_OUT_LEN = 8        # per-block compressed length         [A_OUT_LEN .. +NUM_BLOCKS)
A_INPUT = 12         # raw input bytes                     [A_INPUT .. +FILE_SIZE)
A_OUTPUT = 20        # per-block output slots              [A_OUTPUT + b*MAX_BLOCK_OUT ...]
ARENA_SIZE = A_OUTPUT + NUM_BLOCKS * MAX_BLOCK_OUT


def build_program(num_workers: int = NUM_WORKERS) -> L.Program:
    """Build the pbzip model: read, compress on workers, reassemble, verify."""

    # rle_compress(arena, block) -> compressed length of that block.
    rle_compress = L.func(
        "rle_compress", ["arena", "block"],
        L.decl("src", L.add(A_INPUT, L.mul(L.var("block"), BLOCK_SIZE))),
        L.decl("dst", L.add(A_OUTPUT, L.mul(L.var("block"), MAX_BLOCK_OUT))),
        L.decl("i", 0),
        L.decl("out", 0),
        L.while_(L.lt(L.var("i"), BLOCK_SIZE),
            L.decl("byte", L.index(L.var("arena"), L.add(L.var("src"), L.var("i")))),
            L.decl("run", 1),
            L.while_(L.land(L.lt(L.add(L.var("i"), L.var("run")), BLOCK_SIZE),
                            L.eq(L.index(L.var("arena"),
                                         L.add(L.var("src"),
                                               L.add(L.var("i"), L.var("run")))),
                                 L.var("byte"))),
                L.assign("run", L.add(L.var("run"), 1)),
            ),
            L.store(L.var("arena"), L.add(L.var("dst"), L.var("out")), L.var("run")),
            L.store(L.var("arena"), L.add(L.var("dst"), L.add(L.var("out"), 1)),
                    L.var("byte")),
            L.assign("out", L.add(L.var("out"), 2)),
            L.assign("i", L.add(L.var("i"), L.var("run"))),
        ),
        L.store(L.var("arena"), L.add(A_OUT_LEN, L.var("block")), L.var("out")),
        L.ret(L.var("out")),
    )

    # worker(arena): drain the block queue until every block is claimed.
    worker = L.func(
        "worker", ["arena"],
        L.decl("mutex", L.index(L.var("arena"), A_MUTEX)),
        L.decl("not_empty", L.index(L.var("arena"), A_NOT_EMPTY)),
        L.decl("done", L.index(L.var("arena"), A_DONE)),
        L.decl("running", 1),
        L.while_(L.var("running"),
            L.expr_stmt(L.call("pthread_mutex_lock", L.var("mutex"))),
            L.while_(L.ge(L.index(L.var("arena"), A_HEAD),
                          L.index(L.var("arena"), A_PRODUCED)),
                L.if_(L.ge(L.index(L.var("arena"), A_HEAD),
                           L.index(L.var("arena"), A_TOTAL)), [L.break_()]),
                L.expr_stmt(L.call("pthread_cond_wait", L.var("not_empty"),
                                   L.var("mutex"))),
            ),
            L.if_(L.ge(L.index(L.var("arena"), A_HEAD),
                       L.index(L.var("arena"), A_TOTAL)), [
                L.expr_stmt(L.call("pthread_mutex_unlock", L.var("mutex"))),
                L.assign("running", 0),
            ], [
                L.decl("block", L.index(L.var("arena"), A_HEAD)),
                L.store(L.var("arena"), A_HEAD,
                        L.add(L.index(L.var("arena"), A_HEAD), 1)),
                L.expr_stmt(L.call("pthread_mutex_unlock", L.var("mutex"))),
                L.expr_stmt(L.call("rle_compress", L.var("arena"), L.var("block"))),
                L.expr_stmt(L.call("pthread_mutex_lock", L.var("mutex"))),
                L.store(L.var("arena"), A_COMPLETED,
                        L.add(L.index(L.var("arena"), A_COMPLETED), 1)),
                L.if_(L.ge(L.index(L.var("arena"), A_COMPLETED),
                           L.index(L.var("arena"), A_TOTAL)), [
                    L.expr_stmt(L.call("pthread_cond_broadcast", L.var("done"))),
                ]),
                L.expr_stmt(L.call("pthread_cond_broadcast", L.var("not_empty"))),
                L.expr_stmt(L.call("pthread_mutex_unlock", L.var("mutex"))),
            ]),
        ),
        L.ret(0),
    )

    # rle_decompress(arena, block, out, pos) -> new output position.
    rle_decompress = L.func(
        "rle_decompress", ["arena", "block", "out", "pos"],
        L.decl("src", L.add(A_OUTPUT, L.mul(L.var("block"), MAX_BLOCK_OUT))),
        L.decl("len", L.index(L.var("arena"), L.add(A_OUT_LEN, L.var("block")))),
        L.decl("i", 0),
        L.while_(L.lt(L.var("i"), L.var("len")),
            L.decl("run", L.index(L.var("arena"), L.add(L.var("src"), L.var("i")))),
            L.decl("byte", L.index(L.var("arena"),
                                   L.add(L.var("src"), L.add(L.var("i"), 1)))),
            L.decl("j", 0),
            L.while_(L.lt(L.var("j"), L.var("run")),
                L.store(L.var("out"), L.var("pos"), L.var("byte")),
                L.assign("pos", L.add(L.var("pos"), 1)),
                L.assign("j", L.add(L.var("j"), 1)),
            ),
            L.assign("i", L.add(L.var("i"), 2)),
        ),
        L.ret(L.var("pos")),
    )

    # main: set up the arena, start the workers, wait, reassemble, verify.
    body = [
        L.decl("arena", L.call("malloc", ARENA_SIZE)),
        L.store(L.var("arena"), A_MUTEX, L.call("pthread_mutex_init")),
        L.store(L.var("arena"), A_NOT_EMPTY, L.call("pthread_cond_init")),
        L.store(L.var("arena"), A_DONE, L.call("pthread_cond_init")),
        L.store(L.var("arena"), A_TOTAL, NUM_BLOCKS),
        # Read the whole input into the arena.
        L.decl("fd", L.call("open", L.strconst("/input"), 0)),
        L.if_(L.eq(L.var("fd"), 0xFFFFFFFF), [L.ret(100)]),
        L.decl("n", L.call("read", L.var("fd"),
                           L.add(L.var("arena"), A_INPUT), FILE_SIZE)),
        L.if_(L.ne(L.var("n"), FILE_SIZE), [L.ret(101)]),
        # Publish every block and start the workers.
        L.store(L.var("arena"), A_PRODUCED, NUM_BLOCKS),
        L.decl("tids", L.call("malloc", num_workers)),
        L.decl("w", 0),
        L.while_(L.lt(L.var("w"), num_workers),
            L.store(L.var("tids"), L.var("w"),
                    L.call("pthread_create", L.strconst("worker"), L.var("arena"))),
            L.assign("w", L.add(L.var("w"), 1)),
        ),
        # Wait for every block to be compressed.
        L.decl("mutex", L.index(L.var("arena"), A_MUTEX)),
        L.decl("done", L.index(L.var("arena"), A_DONE)),
        L.expr_stmt(L.call("pthread_mutex_lock", L.var("mutex"))),
        L.while_(L.lt(L.index(L.var("arena"), A_COMPLETED), NUM_BLOCKS),
            L.expr_stmt(L.call("pthread_cond_wait", L.var("done"), L.var("mutex"))),
        ),
        L.expr_stmt(L.call("pthread_mutex_unlock", L.var("mutex"))),
        L.assign("w", 0),
        L.while_(L.lt(L.var("w"), num_workers),
            L.expr_stmt(L.call("pthread_join", L.index(L.var("tids"), L.var("w")))),
            L.assign("w", L.add(L.var("w"), 1)),
        ),
        # Decompress block by block, in order, and verify.
        L.decl("out", L.call("malloc", FILE_SIZE)),
        L.decl("pos", 0),
        L.decl("b", 0),
        L.decl("total_out", 0),
        L.while_(L.lt(L.var("b"), NUM_BLOCKS),
            L.assign("pos", L.call("rle_decompress", L.var("arena"), L.var("b"),
                                   L.var("out"), L.var("pos"))),
            L.assign("total_out", L.add(L.var("total_out"),
                                        L.index(L.var("arena"),
                                                L.add(A_OUT_LEN, L.var("b"))))),
            L.assign("b", L.add(L.var("b"), 1)),
        ),
        L.assert_(L.eq(L.var("pos"), FILE_SIZE),
                  "decompressed length differs from the input"),
        L.decl("k", 0),
        L.while_(L.lt(L.var("k"), FILE_SIZE),
            L.assert_(L.eq(L.index(L.var("out"), L.var("k")),
                           L.index(L.var("arena"), L.add(A_INPUT, L.var("k")))),
                      "decompressed byte differs from the input"),
            L.assign("k", L.add(L.var("k"), 1)),
        ),
        L.ret(L.var("total_out")),
    ]
    main = L.func("main", [], *body)

    return L.program("pbzip", rle_compress, worker, rle_decompress, main)


def make_setup(contents: bytes = b"aaabbb", symbolic_bytes: int = 0):
    """Setup callback: ``/input`` with optional leading symbolic bytes."""
    if len(contents) != FILE_SIZE:
        raise ValueError("the model compresses exactly %d bytes" % FILE_SIZE)

    def setup(state: ExecutionState) -> None:
        if symbolic_bytes <= 0:
            add_concrete_file(state, "/input", contents)
            return
        cells = list(contents)
        for i in range(min(symbolic_bytes, len(cells))):
            symbol = state.new_symbol("input_byte")
            state.symbolic_inputs.setdefault("input_byte", []).append(symbol)
            cells[i] = symbol
        node = FileNode(path=b"/input", data=BlockBuffer(), symbolic=True)
        node.data.set_contents(cells)
        posix_of(state).filesystem[b"/input"] = node

    return setup


def make_concrete_test(contents: bytes = b"aaabbb") -> SymbolicTest:
    """Compress one concrete input on two worker threads (single schedule)."""
    return SymbolicTest(
        name="pbzip-concrete",
        program=build_program(),
        setup=make_setup(contents, symbolic_bytes=0),
    )


def make_symbolic_test(contents: bytes = b"aaabbb",
                       symbolic_bytes: int = 1,
                       fork_schedules: bool = False,
                       max_instructions: int = 400_000) -> SymbolicTest:
    """Compress an input with symbolic bytes; optionally fork thread schedules."""
    options = {}
    if fork_schedules:
        options["fork_schedules"] = True
    return SymbolicTest(
        name="pbzip-symbolic-%d%s" % (symbolic_bytes,
                                      "-schedules" if fork_schedules else ""),
        program=build_program(),
        setup=make_setup(contents, symbolic_bytes=symbolic_bytes),
        options=options,
        engine_config=EngineConfig(max_instructions_per_path=max_instructions),
    )
