"""The multiprocess Cloud9 cluster: N worker processes, one load balancer.

This is the paper's deployment shape on one machine: shared-nothing workers
(each owning a private executor, solver, strategy and subtree of the global
execution tree) coordinated by a load balancer that only ever sees queue
lengths and coverage bit vectors (§3.1/§3.3).  Work moves between processes
as path-encoded job trees that the destination replays (§3.2) -- never as
serialized program state.

The coordinator keeps the virtual-time round structure of
:class:`~repro.cluster.coordinator.Cloud9Cluster` so results are directly
comparable across backends: each round it commands every worker process to
explore one instruction budget (the processes run concurrently on real
cores), collects their status updates, runs the balancing algorithm, and
brokers any job transfers synchronously before the next round.  The returned
:class:`~repro.cluster.coordinator.ClusterResult` has the same timeline,
worker stats, transfer-cost and cache-stats fields as the in-process
clusters.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.cluster.coordinator import ClusterResult, _dedupe_bugs
from repro.cluster.load_balancer import LoadBalancer
from repro.cluster.stats import RoundSnapshot, TransferCost
from repro.distrib.messages import (
    ErrorReply,
    ExploreCommand,
    ExportCommand,
    FinalizeCommand,
    FinalReply,
    ImportCommand,
    ReadyReply,
    SeedCommand,
    StatusReply,
    StopCommand,
)
from repro.distrib.worker import worker_main
from repro.engine.errors import BugReport
from repro.engine.limits import ExplorationLimits, effective_limits
from repro.solver.cache import aggregate_cache_counters

__all__ = ["ProcessClusterConfig", "ProcessCloud9Cluster", "WorkerProcessError",
           "default_start_method", "default_mp_context"]


class WorkerProcessError(RuntimeError):
    """A worker process crashed or stopped answering."""


def default_start_method() -> str:
    """The start method process-based execution prefers: "fork" where
    available (cheap, inherits runtime-registered specs), else "spawn".
    Shared by the process cluster and the Campaign pool so the two process
    paths cannot diverge."""
    return ("fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn")


def default_mp_context():
    return multiprocessing.get_context(default_start_method())


@dataclass
class ProcessClusterConfig:
    """Configuration of a multiprocess Cloud9 cluster.

    Mirrors :class:`~repro.cluster.coordinator.ClusterConfig` where the
    concepts coincide; the extra knobs cover process management.  The default
    ``instructions_per_round`` is higher than the in-process cluster's
    because each round costs a command/reply round trip per worker, and
    amortizing that IPC is what makes real-core parallelism pay off.
    """

    num_workers: int = 2
    instructions_per_round: int = 2000
    status_update_interval: int = 1
    balance_interval: int = 1
    delta: float = 1.0
    min_transfer: int = 1
    strategy: Optional[str] = None
    load_balancing_enabled: bool = True
    disable_balancing_after_round: Optional[int] = None
    max_rounds: int = 10_000
    #: multiprocessing start method; None picks "fork" where available
    #: (cheap, inherits runtime-registered specs) and "spawn" elsewhere.
    start_method: Optional[str] = None
    #: Modules each worker process imports before resolving the spec, for
    #: specs registered outside repro.targets (required under "spawn").
    spec_modules: Tuple[str, ...] = ()
    #: Seconds to keep waiting for a reply from a worker whose process has
    #: already exited (a drain grace for replies still in the queue).  A
    #: *live* worker is waited on indefinitely -- a big
    #: ``instructions_per_round`` legitimately takes long, exactly as it
    #: would on the in-process backends; bound total time with
    #: ``ExplorationLimits.max_wall_time`` instead.
    reply_timeout: float = 30.0

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError("a cluster needs at least one worker")
        if self.instructions_per_round < 1:
            raise ValueError("instructions_per_round must be positive")
        if self.reply_timeout <= 0:
            raise ValueError("reply_timeout must be positive")


class _WorkerHandle:
    """Coordinator-side bookkeeping for one worker process."""

    def __init__(self, worker_id: int, process, command_queue, reply_queue):
        self.worker_id = worker_id
        self.process = process
        self.command_queue = command_queue
        self.reply_queue = reply_queue
        self.queue_length = 0
        self.paths_completed = 0
        self.bugs_found = 0
        self.useful_instructions = 0
        self.replay_instructions = 0
        #: Merged coverage bits to piggyback on the next explore command.
        self.pending_coverage_bits: Optional[int] = None


class ProcessCloud9Cluster:
    """Run a registered test spec across worker processes.

    Parameters
    ----------
    spec_name / spec_params:
        The registered test spec every worker process rebuilds locally
        (see :mod:`repro.distrib.specs`).
    config:
        Cluster knobs; defaults to ``ProcessClusterConfig()``.
    line_count:
        The program's line count (for the coverage overlay).  When omitted,
        the spec is resolved once in the coordinator to measure it.
    """

    def __init__(self, spec_name: str,
                 spec_params: Optional[Dict[str, object]] = None,
                 config: Optional[ProcessClusterConfig] = None,
                 line_count: Optional[int] = None,
                 strategy: Optional[str] = None):
        from repro.distrib import specs
        self.config = config or ProcessClusterConfig()
        self.spec_name = spec_name
        self.spec_params = dict(spec_params or {})
        # Validate the spec (and its arguments' picklability matters only in
        # the children; a bad name should fail fast here in the parent).
        specs.get_spec(spec_name)
        self.strategy = strategy if strategy is not None else self.config.strategy
        if line_count is None:
            line_count = specs.resolve_test(
                spec_name, **self.spec_params).program.line_count
        self.line_count = line_count
        self.load_balancer = LoadBalancer(line_count=line_count,
                                          delta=self.config.delta,
                                          min_transfer=self.config.min_transfer)
        self.handles: List[_WorkerHandle] = []
        self.messages_sent = 0

    # -- process management ------------------------------------------------------------

    def _context(self):
        method = self.config.start_method or default_start_method()
        return multiprocessing.get_context(method)

    def _start_workers(self) -> None:
        ctx = self._context()
        for index in range(self.config.num_workers):
            worker_id = index + 1
            command_queue = ctx.Queue()
            reply_queue = ctx.Queue()
            process = ctx.Process(
                target=worker_main,
                args=(worker_id, self.spec_name, self.spec_params,
                      self.strategy, tuple(self.config.spec_modules),
                      command_queue, reply_queue),
                name="cloud9-worker-%d" % worker_id,
                daemon=True)
            process.start()
            self.handles.append(
                _WorkerHandle(worker_id, process, command_queue, reply_queue))
            self.load_balancer.register_worker(worker_id)
        for handle in self.handles:
            ready = self._receive(handle)
            if not isinstance(ready, ReadyReply):
                raise WorkerProcessError(
                    "worker %d sent %r instead of ReadyReply"
                    % (handle.worker_id, ready))
            if ready.line_count != self.line_count:
                raise WorkerProcessError(
                    "worker %d compiled a program with %d lines, coordinator "
                    "expected %d -- the spec factory is not deterministic"
                    % (handle.worker_id, ready.line_count, self.line_count))

    def _shutdown_workers(self) -> None:
        for handle in self.handles:
            if handle.process.is_alive():
                try:
                    handle.command_queue.put(StopCommand())
                except (OSError, ValueError):  # pragma: no cover - queue torn down
                    pass
        for handle in self.handles:
            handle.process.join(timeout=5.0)
            if handle.process.is_alive():  # pragma: no cover - stuck worker
                handle.process.terminate()
                handle.process.join(timeout=5.0)
            # Drain and close queues so their feeder threads exit promptly.
            for q in (handle.command_queue, handle.reply_queue):
                try:
                    while True:
                        q.get_nowait()
                except (queue_module.Empty, OSError, ValueError):
                    pass
                q.close()
        self.handles = []

    # -- messaging ---------------------------------------------------------------------

    def _send(self, handle: _WorkerHandle, command) -> None:
        handle.command_queue.put(command)
        self.messages_sent += 1

    def _receive(self, handle: _WorkerHandle):
        death_deadline: Optional[float] = None
        while True:
            try:
                reply = handle.reply_queue.get(timeout=0.5)
            except queue_module.Empty:
                if handle.process.is_alive():
                    # Still computing; a long round is legitimate.  Total run
                    # time is bounded by limits, not by this loop.
                    continue
                # Dead process: give queued replies a grace period to drain,
                # then report the death.
                if death_deadline is None:
                    death_deadline = time.monotonic() + self.config.reply_timeout
                if time.monotonic() >= death_deadline:
                    raise WorkerProcessError(
                        "worker %d died (exit code %r)"
                        % (handle.worker_id, handle.process.exitcode)) from None
                continue
            if isinstance(reply, ErrorReply):
                raise WorkerProcessError(
                    "worker %d failed:\n%s" % (handle.worker_id, reply.details))
            return reply

    # -- helpers -----------------------------------------------------------------------

    def _balancing_active(self, round_index: int) -> bool:
        if not self.config.load_balancing_enabled:
            return False
        cutoff = self.config.disable_balancing_after_round
        if cutoff is not None and round_index >= cutoff:
            return False
        return True

    def _total_candidates(self) -> int:
        return sum(h.queue_length for h in self.handles)

    def _apply_status(self, handle: _WorkerHandle, status: StatusReply) -> None:
        handle.queue_length = status.queue_length
        handle.paths_completed = status.paths_completed
        handle.bugs_found = status.bugs_found
        handle.useful_instructions = status.useful_instructions
        handle.replay_instructions = status.replay_instructions

    # -- main loop ---------------------------------------------------------------------

    def run(self, max_rounds: Optional[int] = None,
            target_coverage_percent: Optional[float] = None,
            max_paths: Optional[int] = None,
            stop_on_first_bug: bool = False,
            max_wall_time: Optional[float] = None,
            max_instructions: Optional[int] = None,
            limits: Optional[ExplorationLimits] = None) -> ClusterResult:
        """Run rounds until exhaustion, a goal, or a budget is spent.

        Accepts the same ``limits`` bundle as
        :meth:`~repro.cluster.coordinator.Cloud9Cluster.run`.
        """
        lim = effective_limits(limits, max_rounds=max_rounds,
                               coverage_target=target_coverage_percent,
                               max_paths=max_paths,
                               stop_on_first_bug=stop_on_first_bug,
                               max_wall_time=max_wall_time,
                               max_instructions=max_instructions)
        try:
            return self._run(lim)
        finally:
            self._shutdown_workers()

    def _run(self, lim: ExplorationLimits) -> ClusterResult:
        config = self.config
        limit = lim.max_rounds if lim.max_rounds is not None else config.max_rounds
        result = ClusterResult(num_workers=config.num_workers,
                               line_count=self.line_count)
        start = time.monotonic()

        self._start_workers()
        # The first worker to join receives the seed job (§3.1).
        seed_handle = self.handles[0]
        self._send(seed_handle, SeedCommand())
        self._apply_status(seed_handle, self._receive(seed_handle))

        instructions_executed = 0
        round_index = 0
        while round_index < limit:
            balancing = self._balancing_active(round_index)

            # 1. One round of exploration, concurrently across processes.
            useful_before = sum(h.useful_instructions for h in self.handles)
            replay_before = sum(h.replay_instructions for h in self.handles)
            for handle in self.handles:
                self._send(handle, ExploreCommand(
                    budget=config.instructions_per_round,
                    global_coverage_bits=handle.pending_coverage_bits))
                handle.pending_coverage_bits = None
            statuses: Dict[int, StatusReply] = {}
            for handle in self.handles:
                status = self._receive(handle)
                statuses[handle.worker_id] = status
                self._apply_status(handle, status)
            useful_delta = sum(h.useful_instructions for h in self.handles) - useful_before
            replay_delta = sum(h.replay_instructions for h in self.handles) - replay_before
            instructions_executed += useful_delta + replay_delta

            # 2. Status updates into the load balancer + coverage merge.
            if round_index % config.status_update_interval == 0:
                for handle in self.handles:
                    status = statuses[handle.worker_id]
                    merged_bits = self.load_balancer.receive_status(
                        worker_id=handle.worker_id,
                        queue_length=status.queue_length,
                        useful_instructions=status.useful_instructions,
                        coverage_bits=status.coverage_bits,
                        round_index=round_index)
                    handle.pending_coverage_bits = merged_bits

            # 3. Balancing decisions and synchronous job transfers.
            states_transferred = 0
            if balancing and round_index % config.balance_interval == 0:
                by_id = {h.worker_id: h for h in self.handles}
                for command in self.load_balancer.balance(round_index):
                    result.transfer_commands += 1
                    source = by_id[command.source]
                    destination = by_id[command.destination]
                    self._send(source, ExportCommand(count=command.job_count))
                    export = self._receive(source)
                    source.queue_length -= export.job_count
                    if export.encoded_jobs is None:
                        continue
                    self._send(destination,
                               ImportCommand(encoded_jobs=export.encoded_jobs))
                    imported = self._receive(destination)
                    destination.queue_length += imported.imported
                    states_transferred += imported.imported
                    # Keep the balancer's view fresh within this round.
                    self.load_balancer.reports[command.source].queue_length = \
                        source.queue_length
                    self.load_balancer.reports[command.destination].queue_length = \
                        destination.queue_length

            # 4. Record the round.
            covered_count = self.load_balancer.overlay.covered_count
            coverage_percent = (100.0 * covered_count / self.line_count
                                if self.line_count else 0.0)
            paths_completed = sum(h.paths_completed for h in self.handles)
            bugs_found = sum(h.bugs_found for h in self.handles)
            result.timeline.record(RoundSnapshot(
                round_index=round_index,
                queue_lengths={h.worker_id: h.queue_length for h in self.handles},
                total_candidates=self._total_candidates(),
                states_transferred=states_transferred,
                useful_instructions=useful_delta,
                replay_instructions=replay_delta,
                covered_lines=covered_count,
                coverage_percent=coverage_percent,
                paths_completed=paths_completed,
                bugs_found=bugs_found,
                load_balancing_enabled=balancing,
            ))
            result.total_states_transferred += states_transferred
            round_index += 1

            # 5. Termination checks (same order as the in-process cluster).
            if (lim.coverage_target is not None
                    and coverage_percent >= lim.coverage_target):
                result.goal_reached = True
                break
            if lim.max_paths is not None and paths_completed >= lim.max_paths:
                result.goal_reached = True
                break
            if lim.stop_on_first_bug and bugs_found:
                result.goal_reached = True
                break
            if self._total_candidates() == 0:
                result.exhausted = True
                break
            # Budget limits (spent, not reached: goal_reached stays False).
            if (lim.max_instructions is not None
                    and instructions_executed >= lim.max_instructions):
                break
            if (lim.max_wall_time is not None
                    and time.monotonic() - start >= lim.max_wall_time):
                break

        result.wall_time = time.monotonic() - start
        return self._finalize(result, round_index)

    # -- result assembly ---------------------------------------------------------------

    def _finalize(self, result: ClusterResult, rounds: int) -> ClusterResult:
        finals: List[FinalReply] = []
        for handle in self.handles:
            self._send(handle, FinalizeCommand())
            finals.append(self._receive(handle))

        result.rounds_executed = rounds
        result.paths_completed = sum(f.paths_completed for f in finals)
        result.total_useful_instructions = sum(
            f.stats.useful_instructions for f in finals)
        result.total_replay_instructions = sum(
            f.stats.replay_instructions for f in finals)
        covered: Set[int] = set()
        all_bugs: List[BugReport] = []
        for final in finals:
            covered.update(final.covered_lines)
            all_bugs.extend(final.bugs)
            result.test_cases.extend(final.test_cases)
            result.worker_stats[final.worker_id] = final.stats
        result.covered_lines = covered
        result.coverage_percent = (100.0 * len(covered) / result.line_count
                                   if result.line_count else 0.0)
        result.bugs = _dedupe_bugs(all_bugs)
        result.messages_sent = self.messages_sent
        result.transfer_cost = TransferCost.from_worker_stats(
            result.worker_stats.values())
        result.cache_stats = aggregate_cache_counters(
            f.cache_counters for f in finals)
        return result
