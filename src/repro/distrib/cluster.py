"""The multiprocess Cloud9 cluster: N worker processes, one load balancer.

This is the paper's deployment shape: shared-nothing workers (each owning a
private executor, solver, strategy and subtree of the global execution tree)
coordinated by a load balancer that only ever sees queue lengths and
coverage bit vectors (§3.1/§3.3).  Work moves between workers as
path-encoded job trees that the destination replays (§3.2) -- never as
serialized program state.

The coordinator<->worker channel is a :class:`~repro.net.transport.Transport`
with two carriers, selected by ``ProcessClusterConfig(transport=...)``:

* ``"mp"`` (default) -- one worker process per channel on a pair of
  multiprocessing queues, all on this host; liveness is
  ``Process.is_alive()``.
* ``"tcp"`` -- framed pickles over sockets (:mod:`repro.net`): the
  coordinator listens (``listen="host:port"``) and workers are *agents*
  that dial in (``python -m repro.net.agent --connect HOST:PORT``), from
  this machine or any other.  Liveness is heartbeat-based (periodic pings;
  ``heartbeat_interval`` x ``heartbeat_miss_threshold`` of silence means
  dead), so a SIGKILLed or partitioned remote agent is detected without an
  OS-level oracle and recovered through the same ledger machinery below.

The round protocol itself -- virtual-time rounds, status collection,
balancing, checkpoint cadence, termination, result finalization -- is the
shared :class:`~repro.cluster.core.CoordinatorCore` engine, the same one
driving the in-process backends, so results are directly comparable across
backends by construction.  This module contributes the process half: each
round the hooks command every worker process to explore one instruction
budget (the processes run concurrently on real cores), collect their status
replies, and broker job transfers synchronously before the next round.  The
returned :class:`~repro.cluster.core.ClusterResult` has the same timeline,
worker stats, transfer-cost and cache-stats fields as the in-process
clusters.

Fault tolerance (§2.3) is the coordinator's job.  Because the seed job and
every brokered transfer flow through it, the coordinator maintains a
:class:`~repro.cluster.ledger.FrontierLedger` mapping each worker to the
execution-tree territory it owns.  When a worker process dies mid-round the
coordinator marks it dead, re-materializes its territory as path-encoded
jobs (fencing off subtrees that live workers own), requeues them to the
survivors, and -- under ``ProcessClusterConfig(respawn=True)`` -- spawns a
replacement instead of raising.  Workers may also join and leave voluntarily
between rounds (:meth:`~repro.cluster.core.CoordinatorCore.add_worker` /
:meth:`~repro.cluster.core.CoordinatorCore.remove_worker`), and periodic
:class:`~repro.cluster.checkpoint.ClusterCheckpoint` snapshots let a killed
run resume (``run(resume_from=...)``) instead of restarting.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.cluster.autoscale import AutoscalePolicy
from repro.cluster.checkpoint import ClusterCheckpoint
from repro.cluster.core import (
    ClusterResult,
    CoordinatorCore,
    MemberFailure,
    MemberFinal,
    RoundWork,
    _dedupe_bugs,
)
from repro.cluster.jobs import Job, JobTree
from repro.cluster.ledger import FrontierLedger, RecoveryJob
from repro.cluster.load_balancer import LoadBalancer
from repro.cluster.stats import WorkerStats
from repro.distrib.messages import (
    DrainStatusCommand,
    ErrorReply,
    ExploreCommand,
    ExportCommand,
    ExportReply,
    FinalizeCommand,
    FinalReply,
    ImportCommand,
    ImportReply,
    ReadyReply,
    SeedCommand,
    StatusReply,
    StopCommand,
)
from repro.distrib.worker import worker_main
from repro.net.framing import DEFAULT_MAX_FRAME_SIZE
from repro.net.heartbeat import (
    DEFAULT_HEARTBEAT_INTERVAL,
    DEFAULT_MISS_THRESHOLD,
)
from repro.net.server import AgentServer, NoPendingAgent
from repro.net.transport import (
    QueuePairTransport,
    ReceiveTimeout,
    Transport,
    TransportError,
    reap_process,
)
from repro.obs import schema as trace_schema

__all__ = ["ProcessClusterConfig", "ProcessCloud9Cluster", "WorkerProcessError",
           "default_start_method", "default_mp_context"]


class WorkerProcessError(RuntimeError):
    """A worker process crashed and the run could not (or was configured not
    to) recover: startup failure, failure budget exhausted, or no survivors."""


class _WorkerFailure(MemberFailure):
    """Internal: one worker process died or reported a crash."""

    def __init__(self, handle: "_WorkerHandle", reason: str):
        super().__init__(handle, reason)
        self.handle = handle


def default_start_method() -> str:
    """The start method process-based execution prefers: "fork" where
    available (cheap, inherits runtime-registered specs), else "spawn".
    Shared by the process cluster and the Campaign pool so the two process
    paths cannot diverge."""
    return ("fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn")


def default_mp_context():
    return multiprocessing.get_context(default_start_method())


@dataclass
class ProcessClusterConfig:
    """Configuration of a multiprocess Cloud9 cluster.

    Mirrors :class:`~repro.cluster.coordinator.ClusterConfig` where the
    concepts coincide; the extra knobs cover process management.  The default
    ``instructions_per_round`` is higher than the in-process cluster's
    because each round costs a command/reply round trip per worker, and
    amortizing that IPC is what makes real-core parallelism pay off.
    """

    num_workers: int = 2
    instructions_per_round: int = 2000
    status_update_interval: int = 1
    balance_interval: int = 1
    delta: float = 1.0
    min_transfer: int = 1
    strategy: Optional[str] = None
    load_balancing_enabled: bool = True
    disable_balancing_after_round: Optional[int] = None
    max_rounds: int = 10_000
    #: multiprocessing start method; None picks "fork" where available
    #: (cheap, inherits runtime-registered specs) and "spawn" elsewhere.
    start_method: Optional[str] = None
    #: Modules each worker process imports before resolving the spec, for
    #: specs registered outside repro.targets (required under "spawn").
    spec_modules: Tuple[str, ...] = ()
    #: Seconds to keep waiting for a reply from a worker whose process has
    #: already exited (a drain grace for replies still in the queue).  A
    #: *live* worker is waited on indefinitely -- a big
    #: ``instructions_per_round`` legitimately takes long, exactly as it
    #: would on the in-process backends; bound total time with
    #: ``ExplorationLimits.max_wall_time`` instead.
    reply_timeout: float = 30.0
    #: Total worker failures tolerated before the run raises
    #: :class:`WorkerProcessError`.  ``None`` (the default) tolerates any
    #: number as long as at least one worker survives or can be respawned;
    #: ``0`` restores the old die-on-first-failure behavior.
    max_worker_failures: Optional[int] = None
    #: Spawn a replacement process for every dead worker, keeping the
    #: cluster at its configured size through worker churn.
    respawn: bool = False
    #: Seconds granted to a worker at each escalation step of teardown
    #: (cooperative join, then terminate, then kill).
    shutdown_timeout: float = 5.0
    #: Write a :class:`~repro.cluster.checkpoint.ClusterCheckpoint` every N
    #: rounds (None = never); the latest is kept on ``last_checkpoint`` and,
    #: when ``checkpoint_path`` is set, saved there for ``resume_from=``.
    checkpoint_every: Optional[int] = None
    checkpoint_path: Optional[str] = None
    #: Autoscaling policy driving elastic membership from the round hook
    #: (None = fixed size; ``True`` = default :class:`AutoscalePolicy`).
    #: ``num_workers`` is the *initial* size; the policy's min/max bound it
    #: from there.
    autoscale: Optional[AutoscalePolicy] = None
    #: Jobs a retiring worker hands over per round: ``remove_worker`` keeps
    #: the worker as a non-exploring *draining* member and exports at most
    #: this many jobs per round until its frontier is empty, instead of
    #: stalling the round on a synchronous whole-frontier drain.
    drain_chunk: int = 16
    #: Carrier of the coordinator<->worker channel: ``"mp"`` (the in-host
    #: multiprocessing-queue pair, the default) or ``"tcp"`` (framed pickles
    #: over sockets, :mod:`repro.net` -- workers are *agents* that dial in
    #: from anywhere, ``python -m repro.net.agent --connect HOST:PORT``).
    transport: str = "mp"
    #: TCP only: the ``"host:port"`` the coordinator listens on for agents
    #: (port 0 picks a free port; the bound address is
    #: ``cluster.listen_address``).  Default loopback-only; listen on
    #: ``"0.0.0.0:PORT"`` to accept remote machines.
    listen: str = "127.0.0.1:0"
    #: TCP only: seconds between agent heartbeat pings, and how many may be
    #: missed before a silent agent is declared dead and its territory
    #: recovered (detection latency = interval * miss threshold).
    heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL
    heartbeat_miss_threshold: int = DEFAULT_MISS_THRESHOLD
    #: TCP only: reject wire frames larger than this many bytes (a corrupt
    #: or hostile peer fails alone instead of ballooning the coordinator).
    max_frame_size: int = DEFAULT_MAX_FRAME_SIZE
    #: TCP only: seconds to wait for a dialed-in agent when one is needed
    #: (initial membership, ``add_worker``, respawn) before giving up.
    agent_wait_timeout: float = 30.0
    #: TCP only: let the coordinator spawn loopback agent processes itself
    #: whenever a worker is needed, instead of waiting for external agents.
    #: Exercises the full socket path self-contained -- the CI smoke, the
    #: benchmarks and ``backend="tcp"`` quickstarts use this.
    spawn_local_agents: bool = False
    #: ``"host:port"`` to serve the live run status on (read-only JSON, one
    #: line per connection; see :mod:`repro.obs.status`).  ``None`` disables
    #: the status server; port 0 picks a free port, with the bound address
    #: on ``cluster.status_address`` while the run is live.
    status_listen: Optional[str] = None

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError("a cluster needs at least one worker")
        if self.instructions_per_round < 1:
            raise ValueError("instructions_per_round must be positive")
        if self.reply_timeout <= 0:
            raise ValueError("reply_timeout must be positive")
        if self.shutdown_timeout <= 0:
            raise ValueError("shutdown_timeout must be positive")
        if self.max_worker_failures is not None and self.max_worker_failures < 0:
            raise ValueError("max_worker_failures must be non-negative")
        if self.drain_chunk < 1:
            raise ValueError("drain_chunk must be positive")
        if self.transport not in ("mp", "tcp"):
            raise ValueError("transport must be 'mp' or 'tcp', got %r"
                             % (self.transport,))
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if self.heartbeat_miss_threshold < 1:
            raise ValueError("heartbeat_miss_threshold must be at least 1")
        if self.max_frame_size < 1024:
            raise ValueError("max_frame_size must be at least 1 KiB")
        if self.agent_wait_timeout <= 0:
            raise ValueError("agent_wait_timeout must be positive")
        if self.spawn_local_agents and self.transport != "tcp":
            raise ValueError("spawn_local_agents requires transport='tcp'")
        self.autoscale = AutoscalePolicy.coerce(self.autoscale)


class _WorkerHandle:
    """Coordinator-side bookkeeping for one worker, behind its transport."""

    def __init__(self, worker_id: int, transport: Transport,
                 agent_process=None):
        self.worker_id = worker_id
        self.transport = transport
        #: The loopback agent process, when this coordinator spawned one
        #: itself (``spawn_local_agents=True``); None for external agents.
        self.agent_process = agent_process
        self.queue_length = 0
        self.paths_completed = 0
        self.bugs_found = 0
        self.useful_instructions = 0
        self.replay_instructions = 0
        #: Merged coverage bits to piggyback on the next explore command.
        self.pending_coverage_bits: Optional[int] = None
        #: Last-known solver/cache counters, piggybacked on every status
        #: reply: when this worker dies before its FinalReply, these still
        #: enter the run's aggregated cache statistics.
        self.cache_counters: Dict[str, int] = {}

    @property
    def process(self):
        """The underlying worker process, where one exists on this host
        (the mp-queue pair's child, or a coordinator-spawned loopback
        agent); None for a remote agent."""
        return getattr(self.transport, "process", None) or self.agent_process


class ProcessCloud9Cluster(CoordinatorCore):
    """Run a registered test spec across worker processes.

    The round protocol (rounds, balancing, checkpoint cadence, termination,
    finalization) is the shared :class:`~repro.cluster.core.CoordinatorCore`
    engine; this class supplies its hooks over command/reply messages to
    worker processes (mp queues) or dialed-in agents (TCP), plus the
    process-specific machinery: spawn/admit, the frontier ledger, failure
    recovery and respawn.

    Parameters
    ----------
    spec_name / spec_params:
        The registered test spec every worker process rebuilds locally
        (see :mod:`repro.distrib.specs`).
    config:
        Cluster knobs; defaults to ``ProcessClusterConfig()``.
    line_count:
        The program's line count (for the coverage overlay).  When omitted,
        the spec is resolved once in the coordinator to measure it.
    """

    def __init__(self, spec_name: str,
                 spec_params: Optional[Dict[str, object]] = None,
                 config: Optional[ProcessClusterConfig] = None,
                 line_count: Optional[int] = None,
                 strategy: Optional[str] = None):
        from repro.distrib import specs
        super().__init__(config or ProcessClusterConfig())
        self.config: ProcessClusterConfig
        self.spec_name = spec_name
        self.spec_params = dict(spec_params or {})
        # Validate the spec (and its arguments' picklability matters only in
        # the children; a bad name should fail fast here in the parent).
        specs.get_spec(spec_name)
        self.strategy = strategy if strategy is not None else self.config.strategy
        if line_count is None:
            line_count = specs.resolve_test(
                spec_name, **self.spec_params).program.line_count
        self.line_count = line_count
        self.load_balancer = LoadBalancer(line_count=line_count,
                                          delta=self.config.delta,
                                          min_transfer=self.config.min_transfer)
        self.handles: List[_WorkerHandle] = []
        self.messages_sent = 0
        #: Which execution-tree territory each worker owns (for recovery).
        self.ledger = FrontierLedger()
        self._next_worker_id = 1
        self._pending_recovery: List[RecoveryJob] = []
        self._pending_respawns = 0
        self._departed_finals: List[FinalReply] = []
        self._result: Optional[ClusterResult] = None
        self._round_statuses: Dict[int, StatusReply] = {}
        self._heartbeat_misses = 0
        self._agents_reconnected = 0
        # Dead workers' last-known cache counters: the run's cache aggregate
        # must include members that never finalized.
        self._failed_cache_counters: Dict[int, Dict[str, int]] = {}
        # TCP transport: workers are agents that dial into this listener.
        # Created eagerly so ``listen_address`` is known (and printable, and
        # dialable) before ``run()`` blocks waiting for agents.
        self.server: Optional[AgentServer] = None
        if self.config.transport == "tcp":
            self._open_server()

    @property
    def backend_name(self) -> str:
        return "tcp" if self.config.transport == "tcp" else "process"

    # -- process / agent management ----------------------------------------------------

    def _context(self):
        method = self.config.start_method or default_start_method()
        return multiprocessing.get_context(method)

    def _open_server(self) -> None:
        self.server = AgentServer(
            spec_name=self.spec_name,
            spec_params=self.spec_params,
            strategy=self.strategy,
            spec_modules=tuple(self.config.spec_modules),
            listen=self.config.listen,
            heartbeat_interval=self.config.heartbeat_interval,
            heartbeat_miss_threshold=self.config.heartbeat_miss_threshold,
            max_frame_size=self.config.max_frame_size)

    @property
    def listen_address(self) -> Optional[Tuple[str, int]]:
        """The bound (host, port) agents should dial (TCP transport only)."""
        return self.server.address if self.server is not None else None

    @property
    def pending_agents(self) -> int:
        """Dialed-in agents waiting to be admitted (TCP transport only)."""
        return self.server.pending_count if self.server is not None else 0

    def _spawn_local_agent(self):
        """Fork one loopback agent process pointed at our own listener."""
        from repro.net.agent import _local_agent_main  # lazy: import cycle
        host, port = self.server.address
        process = self._context().Process(
            target=_local_agent_main,
            args=("%s:%d" % (host, port), tuple(self.config.spec_modules),
                  self.config.max_frame_size),
            name="cloud9-agent", daemon=True)
        process.start()
        return process

    def _launch(self) -> _WorkerHandle:
        """Provision one worker (without waiting for its ReadyReply).

        On the mp transport this starts a worker process on its queue pair;
        on the TCP transport it *admits* the next dialed-in agent from the
        pending pool (first spawning a loopback agent of our own under
        ``spawn_local_agents=True``).
        """
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        if self.config.transport == "tcp":
            agent_process = None
            if self.config.spawn_local_agents:
                agent_process = self._spawn_local_agent()
            try:
                transport = self.server.admit(
                    worker_id, timeout=self.config.agent_wait_timeout)
            except NoPendingAgent as exc:
                if agent_process is not None:
                    reap_process(agent_process,
                                 timeout=self.config.shutdown_timeout)
                raise WorkerProcessError(str(exc)) from None
            return _WorkerHandle(worker_id, transport,
                                 agent_process=agent_process)
        ctx = self._context()
        command_queue = ctx.Queue()
        reply_queue = ctx.Queue()
        process = ctx.Process(
            target=worker_main,
            args=(worker_id, self.spec_name, self.spec_params,
                  self.strategy, tuple(self.config.spec_modules),
                  command_queue, reply_queue),
            name="cloud9-worker-%d" % worker_id,
            daemon=True)
        process.start()
        return _WorkerHandle(
            worker_id, QueuePairTransport(process, command_queue, reply_queue))

    def _check_ready(self, handle: _WorkerHandle) -> None:
        """Wait for the ReadyReply and enroll the worker; _WorkerFailure on death."""
        ready = self._receive(handle)
        if not isinstance(ready, ReadyReply):
            raise WorkerProcessError(
                "worker %d sent %r instead of ReadyReply"
                % (handle.worker_id, ready))
        if ready.line_count != self.line_count:
            raise WorkerProcessError(
                "worker %d compiled a program with %d lines, coordinator "
                "expected %d -- the spec factory is not deterministic"
                % (handle.worker_id, ready.line_count, self.line_count))
        self.handles.append(handle)
        self.load_balancer.register_worker(handle.worker_id)
        self.ledger.register(handle.worker_id)

    def _start_workers(self) -> None:
        launched = [self._launch() for _ in range(self.config.num_workers)]
        for handle in launched:
            try:
                self._check_ready(handle)
            except _WorkerFailure as failure:
                # Startup failures are configuration errors, not churn.
                raise WorkerProcessError(
                    "worker %d %s" % (failure.handle.worker_id,
                                      failure.reason)) from None

    def _spawn_worker(self) -> _WorkerHandle:
        """Start one worker and wait for it (respawn / elastic join path)."""
        # Seed the newcomer's balancer report with the mean queue length:
        # until its first real status arrives, a fabricated zero would skew
        # queue_length_spread() and draw spurious transfers (computed before
        # registration so the newcomer's own empty report is excluded).
        seed_length = round(self.load_balancer.mean_queue_length())
        handle = self._launch()
        self._check_ready(handle)
        if self.config.transport == "tcp":
            # Every admission past the initial membership is an agent
            # (re)connecting into a running cluster: a respawn replacement
            # or an elastic join.
            self._agents_reconnected += 1
        self.load_balancer.register_worker(handle.worker_id,
                                           queue_length=seed_length)
        bits = self.load_balancer.overlay.global_vector.as_int()
        if bits:
            handle.pending_coverage_bits = bits
        return handle

    def _cleanup_handle(self, handle: _WorkerHandle) -> None:
        """Tear down a worker's channel (alive, stuck, or dead).

        The transport owns the escalation: the queue pair reaps its child
        process (join -> terminate -> kill) and drains its queues; the TCP
        transport grants a drain window for a graceful hang-up, then cuts
        the socket.  A coordinator-spawned loopback agent process is reaped
        here too, with the same escalation.
        """
        timeout = self.config.shutdown_timeout
        handle.transport.close(timeout=timeout)
        if handle.agent_process is not None:
            reap_process(handle.agent_process, timeout=timeout)

    def _shutdown_workers(self) -> None:
        everyone = self.handles + self._draining
        for handle in everyone:
            if handle.transport.is_alive():
                try:
                    handle.transport.send(StopCommand())
                except TransportError:  # pragma: no cover - channel torn down
                    pass
        for handle in everyone:
            self._cleanup_handle(handle)
        self.handles = []
        self._draining = []
        if self.server is not None:
            self.server.close()
            self.server = None

    # -- messaging ---------------------------------------------------------------------

    def _send(self, handle: _WorkerHandle, command) -> None:
        try:
            handle.transport.send(command)
        except TransportError as exc:
            raise _WorkerFailure(handle, str(exc)) from None
        self.messages_sent += 1

    def _receive(self, handle: _WorkerHandle):
        transport = handle.transport
        death_deadline: Optional[float] = None
        while True:
            try:
                reply = transport.recv(timeout=0.5)
            except ReceiveTimeout:
                if transport.is_alive():
                    # Still computing; a long round is legitimate.  Total run
                    # time is bounded by limits, not by this loop.
                    continue
                # Dead peer (process exit, connection lost, or heartbeats
                # missed): give in-flight replies a grace period to drain,
                # then report the death.
                if death_deadline is None:
                    death_deadline = time.monotonic() + self.config.reply_timeout
                if time.monotonic() >= death_deadline:
                    raise _WorkerFailure(
                        handle, transport.liveness_error()) from None
                continue
            except TransportError as exc:
                # The channel itself broke (peer hung up, corrupt or
                # oversized frame): this worker is lost, the run is not.
                raise _WorkerFailure(handle, str(exc)) from None
            if isinstance(reply, ErrorReply):
                raise _WorkerFailure(
                    handle, "failed:\n%s" % reply.details)
            return reply

    # Typed receives: a worker answering with the wrong reply class is a
    # protocol violation, handled like any other worker failure instead of
    # crashing the coordinator with an AttributeError three frames later.

    def _receive_status(self, handle: _WorkerHandle) -> StatusReply:
        reply = self._receive(handle)
        if not isinstance(reply, StatusReply):
            raise _WorkerFailure(
                handle, "sent %r instead of StatusReply" % (reply,))
        return reply

    def _receive_export(self, handle: _WorkerHandle) -> ExportReply:
        reply = self._receive(handle)
        if not isinstance(reply, ExportReply):
            raise _WorkerFailure(
                handle, "sent %r instead of ExportReply" % (reply,))
        return reply

    def _receive_import(self, handle: _WorkerHandle) -> ImportReply:
        reply = self._receive(handle)
        if not isinstance(reply, ImportReply):
            raise _WorkerFailure(
                handle, "sent %r instead of ImportReply" % (reply,))
        return reply

    def _receive_final(self, handle: _WorkerHandle) -> FinalReply:
        reply = self._receive(handle)
        if not isinstance(reply, FinalReply):
            raise _WorkerFailure(
                handle, "sent %r instead of FinalReply" % (reply,))
        return reply

    # -- fault tolerance ----------------------------------------------------------------

    def _live_ids(self) -> Set[int]:
        return {h.worker_id for h in self.handles + self._draining}

    def _handle_failure(self, failure: _WorkerFailure, result: ClusterResult,
                        requeue: bool = True) -> None:
        """Mark a worker dead and stage its territory for recovery.

        Covers live and draining members alike (a worker can die mid-drain;
        its not-yet-exported territory is requeued from the ledger exactly
        like any other death).  Raises :class:`WorkerProcessError` when the
        failure budget is exhausted.  The staged recovery jobs (and the
        replacement worker, under ``respawn=True``) materialize at the next
        :meth:`_flush_recovery` call -- a point where no commands are
        outstanding, so request/reply pairing stays intact.
        """
        handle = failure.handle
        if handle.worker_id not in self._live_ids():
            return  # already accounted
        was_draining = handle in self._draining
        if was_draining:
            self._draining.remove(handle)
        else:
            self.handles.remove(handle)
        result.worker_failures += 1
        if getattr(handle.transport, "heartbeat_missed", False):
            # Death detected by heartbeat silence (vs. connection loss or
            # process exit) -- kept as its own counter on the result.
            self._heartbeat_misses += 1
            if self.tracer.enabled:
                self.tracer.emit(trace_schema.HEARTBEAT_MISS, worker=handle.worker_id)
        if self.tracer.enabled:
            self.tracer.emit(trace_schema.WORKER_DIED, worker=handle.worker_id,
                             reason=failure.reason, draining=was_draining)
        if handle.cache_counters:
            # Its FinalReply will never arrive; the last piggybacked
            # counters keep the run's cache aggregate honest.
            self._failed_cache_counters[handle.worker_id] = dict(
                handle.cache_counters)
        result.failed_worker_stats[handle.worker_id] = WorkerStats(
            worker_id=handle.worker_id,
            useful_instructions=handle.useful_instructions,
            replay_instructions=handle.replay_instructions,
            paths_completed=handle.paths_completed)
        self.load_balancer.deregister_worker(handle.worker_id)
        budget = self.config.max_worker_failures
        if budget is not None and result.worker_failures > budget:
            self._cleanup_handle(handle)
            raise WorkerProcessError(
                "worker %d %s; failure budget exhausted "
                "(max_worker_failures=%d)"
                % (handle.worker_id, failure.reason, budget)) from None
        if requeue:
            self._pending_recovery.extend(
                self.ledger.recovery_jobs(handle.worker_id))
            # A draining worker was leaving anyway: recover its territory
            # but do not respawn a replacement for it.
            if self.config.respawn and not was_draining:
                self._pending_respawns += 1
        self.ledger.forget(handle.worker_id)
        self._cleanup_handle(handle)

    def _flush_recovery(self, result: ClusterResult) -> None:
        """Respawn replacements and requeue dead workers' territories.

        Only called at protocol barriers (every outstanding command has been
        answered or its worker declared dead).
        """
        while self._pending_respawns or self._pending_recovery:
            if self._pending_respawns:
                self._pending_respawns -= 1
                try:
                    replacement = self._spawn_worker()
                    result.respawns += 1
                    if self.tracer.enabled:
                        self.tracer.emit(trace_schema.WORKER_RESPAWNED,
                                         worker=replacement.worker_id)
                except _WorkerFailure as failure:
                    result.worker_failures += 1
                    budget = self.config.max_worker_failures
                    if (budget is not None
                            and result.worker_failures > budget):
                        raise WorkerProcessError(
                            "respawned worker %d %s; failure budget "
                            "exhausted (max_worker_failures=%d)"
                            % (failure.handle.worker_id, failure.reason,
                               budget)) from None
                    self._cleanup_handle(failure.handle)
                continue
            if not self.handles:
                raise WorkerProcessError(
                    "every worker died and respawn is disabled; "
                    "%d recovery job(s) have nowhere to go"
                    % len(self._pending_recovery))
            job = self._pending_recovery.pop(0)
            handle = min(self.handles, key=lambda h: h.queue_length)
            self.ledger.acquire(handle.worker_id, job.root)
            for fence in job.fences:
                self.ledger.cede(handle.worker_id, fence)
            tree = JobTree.from_jobs([Job(job.root)])
            try:
                self._send(handle, ImportCommand(
                    encoded_jobs=tree.encode(),
                    fence_paths=job.fences,
                    recovered=True))
                reply = self._receive_import(handle)
            except _WorkerFailure as failure:
                # The survivor died too; its ledger now includes this job,
                # so _handle_failure re-stages it (budget permitting).
                self._handle_failure(failure, result)
                continue
            handle.queue_length += reply.imported
            result.jobs_recovered += 1
            if self.tracer.enabled:
                self.tracer.emit(trace_schema.JOBS_RECOVERED, worker=handle.worker_id,
                                 jobs=reply.imported)
            report = self.load_balancer.reports.get(handle.worker_id)
            if report is not None:
                report.queue_length = handle.queue_length

    # -- membership hooks (§2.3: workers join and leave mid-run) -------------------------

    def _live_members(self) -> List[_WorkerHandle]:
        return self.handles

    def _admit_member(self) -> _WorkerHandle:
        """Join a fresh worker (``add_worker``): fork a new worker process
        on the mp transport, or admit the next dialed-in agent on TCP
        (spawning a loopback agent first under ``spawn_local_agents=True``)
        -- which is how the autoscaler scales against a pool of standby
        remote hosts."""
        if not self.handles:
            raise RuntimeError("add_worker() requires a running cluster "
                               "(call it from round_hook)")
        if (self.config.transport == "tcp"
                and not self.config.spawn_local_agents
                and self.server is not None
                and self.server.pending_count == 0):
            # Fail fast instead of stalling the round for agent_wait_timeout:
            # mid-run growth admits agents that have *already* dialed in.
            raise WorkerProcessError(
                "no pending agent to admit at %s:%d -- start one with: "
                "python -m repro.net.agent --connect %s:%d"
                % (self.server.address + self.server.address))
        try:
            return self._spawn_worker()
        except _WorkerFailure as failure:
            # The newcomer died during startup; it owned nothing yet.
            self._cleanup_handle(failure.handle)
            raise WorkerProcessError(
                "worker %d %s while joining"
                % (failure.handle.worker_id, failure.reason)) from None

    def _purge_departing(self, member: _WorkerHandle) -> None:
        self.load_balancer.deregister_worker(member.worker_id)

    def _drain_member(self, handle: _WorkerHandle) -> int:
        """Export one drain chunk from a draining worker; retire it (collect
        final results, stop the process) once its frontier is empty."""
        result = self._result
        if not self.handles:
            # Nobody to hand jobs to; try again once a survivor exists.
            return 0
        try:
            self._send(handle, ExportCommand(count=self.config.drain_chunk))
            export = self._receive_export(handle)
        except _WorkerFailure as failure:
            # Died mid-drain: its remaining territory is recovered from the
            # ledger like any other worker death.
            if result is not None:
                self._handle_failure(failure, result)
                self._flush_recovery(result)
            return 0
        moved = 0
        if export.encoded_jobs is not None and self.handles:
            target = min(self.handles, key=lambda h: h.queue_length)
            paths = [job.path for job in
                     JobTree.decode(export.encoded_jobs).jobs()]
            for path in paths:
                self.ledger.cede(handle.worker_id, path)
                # Acquire before the import so a target that dies
                # mid-handover is recovered with these jobs included.
                self.ledger.acquire(target.worker_id, path)
            try:
                self._send(target, ImportCommand(
                    encoded_jobs=export.encoded_jobs))
                reply = self._receive_import(target)
            except _WorkerFailure as failure:
                if result is not None:
                    self._handle_failure(failure, result)
                    self._flush_recovery(result)
            else:
                target.queue_length += reply.imported
                moved = reply.imported
                report = self.load_balancer.reports.get(target.worker_id)
                if report is not None:
                    report.queue_length = target.queue_length
        # An export smaller than the chunk means the frontier is empty now.
        if export.job_count < self.config.drain_chunk:
            handle.queue_length = 0
        else:
            handle.queue_length = max(0, handle.queue_length
                                      - export.job_count)
        if handle.queue_length == 0:
            self._retire_draining(handle)
        return moved

    def _retire_draining(self, handle: _WorkerHandle) -> None:
        """Collect a drained worker's final results and stop its process."""
        try:
            self._send(handle, FinalizeCommand())
            final = self._receive_final(handle)
        except _WorkerFailure as failure:
            if self._result is not None:
                self._handle_failure(failure, self._result)
                self._flush_recovery(self._result)
            return
        self._departed_finals.append(final)
        if handle in self._draining:
            self._draining.remove(handle)
        self._note_member_left(handle.worker_id)
        self.ledger.forget(handle.worker_id)
        try:
            self._send(handle, StopCommand())
        except _WorkerFailure:  # pragma: no cover - channel torn down
            pass
        self._cleanup_handle(handle)

    # -- round-phase hooks ---------------------------------------------------------------

    def _line_count(self) -> int:
        return self.line_count

    def _spec_label(self) -> Optional[str]:
        return self.spec_name

    def _begin_run(self, result: ClusterResult,
                   resume_from: Optional[Union[ClusterCheckpoint, str]]
                   ) -> None:
        self._result = result
        self._failed_cache_counters = {}
        self._round_statuses = {}
        if self.config.transport == "tcp" and self.server is None:
            self._open_server()  # re-running after a completed run()
        self._start_workers()
        self._peak_workers = max(self._peak_workers, len(self.handles))
        if resume_from is not None:
            self._restore(resume_from, result)
        else:
            # The first worker to join receives the seed job (§3.1).
            seed_handle = self.handles[0]
            self.ledger.acquire(seed_handle.worker_id, ())
            try:
                self._send(seed_handle, SeedCommand())
                self._apply_status(seed_handle,
                                   self._receive_status(seed_handle))
            except _WorkerFailure as failure:
                self._handle_failure(failure, result)
                self._flush_recovery(result)

    def _teardown_run(self) -> None:
        self._shutdown_workers()

    def _pre_round(self, result: ClusterResult) -> None:
        if not self.handles:
            raise WorkerProcessError("no live workers left")

    def _explore_phase(self, result: ClusterResult, round_index: int,
                       checkpoint_due: bool) -> RoundWork:
        # One round of exploration, concurrently across processes.  Draining
        # members take part with a status-only heartbeat: they no longer
        # explore, but their replies keep queue lengths fresh and carry
        # their frontier into checkpoints.
        round_handles = list(self.handles)
        drain_handles = list(self._draining)
        previous = {h.worker_id: (h.useful_instructions,
                                  h.replay_instructions)
                    for h in round_handles}
        for handle in round_handles:
            self._send(handle, ExploreCommand(
                budget=self.config.instructions_per_round,
                global_coverage_bits=handle.pending_coverage_bits,
                report_frontier=checkpoint_due,
                trace=self.tracer.enabled))
            handle.pending_coverage_bits = None
        for handle in drain_handles:
            self._send(handle, DrainStatusCommand(
                report_frontier=checkpoint_due))
        statuses: Dict[int, StatusReply] = {}
        work = RoundWork()
        for handle in round_handles:
            try:
                status = self._receive_status(handle)
            except _WorkerFailure as failure:
                self._handle_failure(failure, result)
                continue
            statuses[handle.worker_id] = status
            prev_useful, prev_replay = previous[handle.worker_id]
            work.useful_delta += status.useful_instructions - prev_useful
            work.replay_delta += status.replay_instructions - prev_replay
            self._apply_status(handle, status)
        for handle in drain_handles:
            try:
                status = self._receive_status(handle)
            except _WorkerFailure as failure:
                self._handle_failure(failure, result)
                continue
            statuses[handle.worker_id] = status
            self._apply_status(handle, status)
        # Requeue dead workers' territories / respawn replacements now that
        # every outstanding command has been resolved.
        self._flush_recovery(result)
        for worker_id, status in statuses.items():
            prev_u, prev_r = previous.get(
                worker_id, (status.useful_instructions,
                            status.replay_instructions))
            work.detail[worker_id] = {
                "useful": status.useful_instructions - prev_u,
                "replay": status.replay_instructions - prev_r,
                "queue": status.queue_length,
            }
        self._round_statuses = statuses
        return work

    def _status_phase(self, round_index: int) -> None:
        # Live members only: draining workers left the balancer's view
        # when their removal began.
        for handle in self.handles:
            status = self._round_statuses.get(handle.worker_id)
            if status is None:
                continue
            merged_bits = self.load_balancer.receive_status(
                worker_id=handle.worker_id,
                queue_length=handle.queue_length,
                useful_instructions=status.useful_instructions,
                coverage_bits=status.coverage_bits,
                round_index=round_index)
            handle.pending_coverage_bits = merged_bits

    def _dispatch_transfer(self, command, result: ClusterResult,
                           round_index: int) -> int:
        return self._execute_transfer(command, result, round_index)

    def _post_balance(self, result: ClusterResult) -> None:
        # Drain chunks move once transfers have settled the queues.
        self._advance_drains()

    def _covered_line_count(self) -> int:
        return self.load_balancer.overlay.covered_count

    def _paths_completed(self) -> int:
        return (self._base_paths
                + sum(h.paths_completed
                      for h in self.handles + self._draining)
                + sum(f.paths_completed for f in self._departed_finals))

    def _bugs_found(self) -> int:
        return sum(h.bugs_found for h in self.handles + self._draining)

    def _take_checkpoint(self, round_index: int) -> None:
        self._write_checkpoint(round_index, self._round_statuses)

    def _apply_status(self, handle: _WorkerHandle, status: StatusReply) -> None:
        handle.queue_length = status.queue_length
        handle.paths_completed = status.paths_completed
        handle.bugs_found = status.bugs_found
        handle.useful_instructions = status.useful_instructions
        handle.replay_instructions = status.replay_instructions
        if status.cache_counters is not None:
            handle.cache_counters = dict(status.cache_counters)
        if status.events:
            # Worker-side buffered events (explore spans, ...) merge into
            # the single coordinator-owned trace file.
            self.tracer.ingest(status.events, worker=handle.worker_id)

    # -- checkpoint / resume -------------------------------------------------------------

    def _write_checkpoint(self, round_index: int,
                          statuses: Dict[int, StatusReply]) -> ClusterCheckpoint:
        frontier: List[Tuple[int, ...]] = []
        # Frontiers come from every status: a worker that finished draining
        # after the statuses were collected listed its final chunk's jobs,
        # which the receiving survivor's (earlier) status does not -- the
        # union still holds each job exactly once.
        for status in statuses.values():
            if status.frontier is None:
                continue
            frontier.extend(job.path
                            for job in JobTree.decode(status.frontier).jobs())
        # Counters and results are different: a member retired between
        # status collection and this snapshot already moved its totals into
        # _departed_finals, so summing its status too would double count.
        active_ids = {h.worker_id for h in self.handles + self._draining}
        statuses = {worker_id: status
                    for worker_id, status in statuses.items()
                    if worker_id in active_ids}
        departed_paths = sum(f.paths_completed for f in self._departed_finals)
        departed_useful = sum(f.stats.useful_instructions
                              for f in self._departed_finals)
        departed_replay = sum(f.stats.replay_instructions
                              for f in self._departed_finals)
        # The overlay lags by up to status_update_interval rounds; fold in
        # the coverage bits just collected so lines covered on completed
        # paths (never re-explored on resume) cannot be lost.
        coverage_bits = self.load_balancer.overlay.global_vector.as_int()
        for status in statuses.values():
            coverage_bits |= status.coverage_bits
        # Self-contained resume: bug reports and generated inputs found
        # before the snapshot travel with it (workers attach them to their
        # status replies on checkpoint rounds only).
        bugs = list(self._base_bugs)
        test_cases = list(self._base_tests)
        for final in self._departed_finals:
            bugs.extend(final.bugs)
            test_cases.extend(final.test_cases)
        for status in statuses.values():
            bugs.extend(status.bugs or ())
            test_cases.extend(status.test_cases or ())
        checkpoint = ClusterCheckpoint(
            round_index=round_index,
            frontier_paths=sorted(frontier),
            coverage_bits=coverage_bits,
            line_count=self.line_count,
            paths_completed=(self._base_paths + departed_paths
                             + sum(s.paths_completed
                                   for s in statuses.values())),
            useful_instructions=(self._base_useful + departed_useful
                                 + sum(s.useful_instructions
                                       for s in statuses.values())),
            replay_instructions=(self._base_replay + departed_replay
                                 + sum(s.replay_instructions
                                       for s in statuses.values())),
            wall_time=(self._base_wall
                       + (time.monotonic() - self._run_started)),
            bug_reports=[ClusterCheckpoint.encode_bug(b)
                         for b in _dedupe_bugs(bugs)],
            test_cases=[ClusterCheckpoint.encode_test_case(t)
                        for t in test_cases],
            worker_stats={
                worker_id: {
                    "useful_instructions": s.useful_instructions,
                    "replay_instructions": s.replay_instructions,
                    "paths_completed": s.paths_completed,
                    "queue_length": s.queue_length,
                }
                for worker_id, s in statuses.items()},
            strategy_seeds={h.worker_id: h.worker_id for h in self.handles},
            spec_name=self.spec_name,
            spec_params=dict(self.spec_params),
            backend=("tcp" if self.config.transport == "tcp" else "process"),
        )
        if self.config.checkpoint_path:
            checkpoint.save(self.config.checkpoint_path)
        self.last_checkpoint = checkpoint
        return checkpoint

    def _restore(self, checkpoint: Union[ClusterCheckpoint, str],
                 result: ClusterResult) -> None:
        checkpoint = ClusterCheckpoint.coerce(checkpoint)
        if checkpoint.line_count != self.line_count:
            raise WorkerProcessError(
                "checkpoint was taken against a %d-line program, this "
                "cluster's spec builds %d lines -- wrong spec?"
                % (checkpoint.line_count, self.line_count))
        bits = checkpoint.coverage_bits
        self.load_balancer.overlay.merge_from_worker(bits)
        shares: Dict[int, List[Tuple[int, ...]]] = {
            h.worker_id: [] for h in self.handles}
        live = list(self.handles)
        for index, path in enumerate(sorted(checkpoint.frontier_paths)):
            shares[live[index % len(live)].worker_id].append(tuple(path))
        for handle in live:
            share = shares[handle.worker_id]
            handle.pending_coverage_bits = bits or None
            if not share:
                continue
            for path in share:
                self.ledger.acquire(handle.worker_id, path)
            tree = JobTree.from_jobs([Job(p) for p in share])
            try:
                self._send(handle, ImportCommand(encoded_jobs=tree.encode()))
                reply = self._receive_import(handle)
            except _WorkerFailure as failure:
                self._handle_failure(failure, result)
                self._flush_recovery(result)
                continue
            handle.queue_length += reply.imported
            report = self.load_balancer.reports.get(handle.worker_id)
            if report is not None:
                report.queue_length = handle.queue_length
        self._base_paths = checkpoint.paths_completed
        self._base_useful = checkpoint.useful_instructions
        self._base_replay = checkpoint.replay_instructions
        self._base_wall = checkpoint.wall_time
        self._base_covered = checkpoint.covered_lines()
        self._base_bugs = checkpoint.decode_bugs()
        self._base_tests = checkpoint.decode_test_cases()
        self._resumed_from_round = checkpoint.round_index

    # -- transfers and finalization ------------------------------------------------------

    def _execute_transfer(self, command, result: ClusterResult,
                          round_index: int = 0) -> int:
        """Broker one source->destination job transfer; returns jobs moved."""
        by_id = {h.worker_id: h for h in self.handles}
        source = by_id.get(command.source)
        destination = by_id.get(command.destination)
        if source is None or destination is None:
            # One end died or departed after the balance decision.
            self.load_balancer.cancel_transfer(command)
            return 0
        result.transfer_commands += 1
        try:
            self._send(source, ExportCommand(count=command.job_count))
            export = self._receive_export(source)
        except _WorkerFailure as failure:
            self.load_balancer.cancel_transfer(command)
            self._handle_failure(failure, result)
            self._flush_recovery(result)
            return 0
        source.queue_length -= export.job_count
        if export.encoded_jobs is None:
            return 0
        exported_paths = [job.path
                          for job in JobTree.decode(export.encoded_jobs).jobs()]
        for path in exported_paths:
            self.ledger.cede(command.source, path)
            self.ledger.acquire(command.destination, path)
        try:
            self._send(destination,
                       ImportCommand(encoded_jobs=export.encoded_jobs))
            imported = self._receive_import(destination)
        except _WorkerFailure as failure:
            # The jobs are in the dead destination's territory already, so
            # recovery requeues them; nothing is lost.
            self._handle_failure(failure, result)
            self._flush_recovery(result)
            return 0
        destination.queue_length += imported.imported
        if self.tracer.enabled and imported.imported:
            self.tracer.emit(trace_schema.JOB_TRANSFERRED, round=round_index,
                             source=command.source,
                             destination=command.destination,
                             jobs=imported.imported)
        # Keep the balancer's view fresh within this round.
        for handle in (source, destination):
            report = self.load_balancer.reports.get(handle.worker_id)
            if report is not None:
                report.queue_length = handle.queue_length
        return imported.imported

    def _collect_finals(self, result: ClusterResult) -> List[MemberFinal]:
        finals: List[FinalReply] = []
        # Members still draining when the run ends are finalized like live
        # ones: their results count, and any jobs left on them were already
        # counted as unexplored candidates by the termination checks.
        for handle in list(self.handles) + list(self._draining):
            try:
                self._send(handle, FinalizeCommand())
                finals.append(self._receive_final(handle))
            except _WorkerFailure as failure:
                # Too late to re-explore; keep its last-known counters.
                self._handle_failure(failure, result, requeue=False)
        finals.extend(self._departed_finals)
        return [MemberFinal(
            worker_id=f.worker_id,
            paths_completed=f.paths_completed,
            useful_instructions=f.stats.useful_instructions,
            replay_instructions=f.stats.replay_instructions,
            covered_lines=set(f.covered_lines),
            bugs=list(f.bugs),
            test_cases=list(f.test_cases),
            stats=f.stats,
            cache_counters=dict(f.cache_counters),
            latency=f.latency) for f in finals]

    def _orphan_cache_counters(self, finalized_ids: Set[int]
                               ) -> List[Dict[str, int]]:
        # Dead workers never sent a FinalReply; their last piggybacked
        # counters (from the status replies) still enter the aggregate so
        # the run's cache hit rates reflect the whole fleet.
        return [counters
                for worker_id, counters in self._failed_cache_counters.items()
                if worker_id not in finalized_ids]

    def _finalize_extras(self, result: ClusterResult,
                         finals: List[MemberFinal]) -> None:
        result.heartbeat_misses = self._heartbeat_misses
        result.agents_reconnected = self._agents_reconnected
        result.messages_sent = self.messages_sent
