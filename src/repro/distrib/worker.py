"""The worker-process side of the multiprocess cluster.

:class:`DistribWorker` wraps the ordinary in-process
:class:`~repro.cluster.worker.Worker` -- the same frontier bookkeeping,
job export/import, lazy replay with fence nodes, and broken-replay detection
(§3.2/§6) -- behind a command/reply interface whose messages all pickle.
:func:`worker_main` is the process entry point: it rebuilds the test from its
spec, then pumps commands from a queue into a ``DistribWorker``.

``DistribWorker`` is deliberately drivable without any process machinery:
the unit tests construct one directly and feed it commands, which is how
broken-replay handling (a shipped job whose path diverges or terminates
prematurely at the destination) is tested deterministically.
"""

from __future__ import annotations

import importlib
import multiprocessing
import queue as queue_module
import traceback
from typing import Callable, Optional, Sequence

from repro.cluster.jobs import Job, JobTree
from repro.cluster.worker import Worker
from repro.distrib.messages import (
    DrainStatusCommand,
    ErrorReply,
    ExploreCommand,
    ExportCommand,
    ExportReply,
    FinalizeCommand,
    FinalReply,
    ImportCommand,
    ImportReply,
    ReadyReply,
    SeedCommand,
    StatusReply,
    StopCommand,
)
from repro.obs.trace import BufferTracer

__all__ = ["DistribWorker", "worker_main"]


class DistribWorker:
    """One worker process's state: a private engine plus the command loop."""

    def __init__(self, worker_id: int, test, strategy: Optional[str] = None):
        self.worker_id = worker_id
        self.test = test
        executor = test.build_executor()
        self.worker = Worker(worker_id, executor, test.build_initial_state,
                             strategy_name=strategy or test.strategy)
        # Created on the first traced ExploreCommand; buffered events ride
        # back to the coordinator on every status reply.
        self.tracer: Optional[BufferTracer] = None

    @property
    def line_count(self) -> int:
        return self.worker.executor.program.line_count

    # -- command handlers --------------------------------------------------------------

    def handle(self, command):
        """Process one command, returning its reply."""
        if isinstance(command, SeedCommand):
            self.worker.seed()
            return self.status()
        if isinstance(command, ExploreCommand):
            return self._explore(command)
        if isinstance(command, DrainStatusCommand):
            # The drain heartbeat: a draining member reports, never explores.
            return self.status(include_frontier=command.report_frontier)
        if isinstance(command, ExportCommand):
            return self._export(command)
        if isinstance(command, ImportCommand):
            return self._import(command)
        if isinstance(command, FinalizeCommand):
            return self._finalize()
        raise TypeError("unknown worker command %r" % (command,))

    def status(self, include_frontier: bool = False) -> StatusReply:
        worker = self.worker
        frontier = None
        bugs = None
        test_cases = None
        if include_frontier:
            frontier = JobTree.from_jobs(
                [Job(path) for path in sorted(worker.frontier_paths())]).encode()
            # Checkpoint rounds only: ship the results found so far so the
            # snapshot is self-contained (a resumed run never re-explores
            # the completed paths these came from).
            bugs = tuple(worker.bugs)
            test_cases = tuple(worker.test_cases)
        return StatusReply(
            worker_id=self.worker_id,
            queue_length=worker.queue_length,
            useful_instructions=worker.stats.useful_instructions,
            replay_instructions=worker.stats.replay_instructions,
            coverage_bits=worker.coverage_view.snapshot_bits(),
            paths_completed=worker.paths_completed,
            bugs_found=len(worker.bugs),
            broken_replays=worker.stats.broken_replays,
            frontier=frontier,
            bugs=bugs,
            test_cases=test_cases,
            events=(tuple(self.tracer.drain())
                    if self.tracer is not None else None),
            cache_counters=worker.executor.solver.cache_counters(),
        )

    def _explore(self, command: ExploreCommand) -> StatusReply:
        if command.trace and self.tracer is None:
            self.tracer = BufferTracer()
        if command.global_coverage_bits is not None:
            new_lines = self.worker.coverage_view.merge_global(
                command.global_coverage_bits)
            self.worker.strategy.merge_global_coverage(new_lines)
        if self.worker.has_work:
            # Worker.explore replays virtual candidates lazily as the
            # strategy selects them; a job whose replay breaks (divergence or
            # premature termination) is reported in ``broken_replays`` and
            # its node dropped -- the worker itself keeps going.
            if self.tracer is not None:
                with self.tracer.span("explore", worker=self.worker_id,
                                      budget=command.budget):
                    self.worker.explore(command.budget)
            else:
                self.worker.explore(command.budget)
        return self.status(include_frontier=command.report_frontier)

    def _export(self, command: ExportCommand) -> ExportReply:
        job_tree = self.worker.export_jobs(command.count)
        count = len(job_tree)
        return ExportReply(
            worker_id=self.worker_id,
            encoded_jobs=job_tree.encode() if count else None,
            job_count=count,
        )

    def _import(self, command: ImportCommand) -> ImportReply:
        job_tree = JobTree.decode(command.encoded_jobs)
        imported = self.worker.import_jobs(job_tree,
                                           fence_paths=command.fence_paths,
                                           recovered=command.recovered)
        return ImportReply(worker_id=self.worker_id, imported=imported)

    def _finalize(self) -> FinalReply:
        worker = self.worker
        return FinalReply(
            worker_id=self.worker_id,
            stats=worker.stats,
            paths_completed=worker.paths_completed,
            covered_lines=set(worker.executor.covered_lines),
            bugs=list(worker.bugs),
            test_cases=list(worker.test_cases),
            cache_counters=worker.executor.solver.cache_counters(),
            latency=worker.executor.solver.query_seconds,
        )


#: How long :func:`worker_main` waits on its command queue before checking
#: that the parent coordinator still exists.  Small enough that an orphaned
#: worker exits promptly; command latency is unaffected (a queued command
#: wakes the ``get`` immediately).
COMMAND_POLL_INTERVAL = 1.0


def _parent_is_alive() -> bool:
    parent = multiprocessing.parent_process()
    return parent is None or parent.is_alive()


def worker_main(worker_id: int, spec_name: str, spec_params: dict,
                strategy: Optional[str], spec_modules: Sequence[str],
                command_queue, reply_queue,
                parent_alive: Optional[Callable[[], bool]] = None) -> None:
    """Process entry point: rebuild the test from its spec and serve commands.

    Any exception -- during startup or while handling a command -- is shipped
    back as an :class:`~repro.distrib.messages.ErrorReply` so the coordinator
    can fail the run with the worker's traceback instead of hanging.  The
    command wait is bounded: between attempts the worker checks that the
    coordinator process still exists (``parent_alive``, injectable for
    tests) and exits instead of surviving as an orphan when it does not.
    """
    if parent_alive is None:
        parent_alive = _parent_is_alive
    try:
        for module_name in spec_modules:
            importlib.import_module(module_name)
        from repro.distrib import specs
        test = specs.resolve_test(spec_name, **dict(spec_params))
        distrib_worker = DistribWorker(worker_id, test, strategy=strategy)
        reply_queue.put(ReadyReply(worker_id=worker_id,
                                   line_count=distrib_worker.line_count))
    except BaseException:
        reply_queue.put(ErrorReply(worker_id=worker_id,
                                   details=traceback.format_exc()))
        return
    while True:
        try:
            command = command_queue.get(timeout=COMMAND_POLL_INTERVAL)
        except queue_module.Empty:
            if not parent_alive():
                return  # orphaned: the coordinator died without StopCommand
            continue
        if isinstance(command, StopCommand):
            break
        try:
            reply_queue.put(distrib_worker.handle(command))
        except BaseException:
            reply_queue.put(ErrorReply(worker_id=worker_id,
                                       details=traceback.format_exc()))
            break
