"""Wire messages between the coordinator process and worker processes.

Everything crossing the process boundary is one of these small picklable
dataclasses.  Jobs travel as the nested-list encoding of a
:class:`~repro.cluster.jobs.JobTree` (prefix-sharing trie, §3.2), coverage as
the overlay bit vector packed into an int (§3.3), and final results as plain
dataclasses (:class:`~repro.cluster.stats.WorkerStats`, bug reports, test
cases).  Program state never does -- that is the point of path-encoded job
shipping.

Every command sent to a worker produces exactly one reply, which keeps the
coordinator's request/reply bookkeeping trivial and makes worker death
detectable as a reply timeout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.cluster.stats import WorkerStats
from repro.engine.errors import BugReport
from repro.engine.test_case import TestCase
from repro.obs.metrics import Histogram

__all__ = [
    "SeedCommand", "ExploreCommand", "DrainStatusCommand", "ExportCommand",
    "ImportCommand", "FinalizeCommand", "StopCommand",
    "ReadyReply", "StatusReply", "ExportReply", "ImportReply", "FinalReply",
    "ErrorReply",
]


# -- commands (coordinator -> worker) ----------------------------------------------------


@dataclass(frozen=True)
class SeedCommand:
    """Give this worker the initial job covering the whole tree (§3.1)."""


@dataclass(frozen=True)
class ExploreCommand:
    """Explore for one round of the given instruction budget.

    ``global_coverage_bits`` piggybacks the load balancer's merged coverage
    vector (§3.3), exactly as the in-process cluster's COVERAGE_UPDATE
    message does; ``None`` means no update this round.

    ``report_frontier`` asks the worker to attach its full frontier (as an
    encoded JobTree) to the status reply; the coordinator sets it on
    checkpoint rounds only, to keep the steady-state wire cost flat.
    """

    budget: int
    global_coverage_bits: Optional[int] = None
    report_frontier: bool = False
    #: Buffer trace events (:class:`repro.obs.trace.BufferTracer`) and
    #: attach them to status replies; set once the coordinator runs traced.
    trace: bool = False


@dataclass(frozen=True)
class DrainStatusCommand:
    """Report status without exploring (the lightweight drain heartbeat).

    Draining members used to answer zero-budget :class:`ExploreCommand`\\ s
    to stay visible; this carries none of the explore machinery (no global
    coverage merge, no budget bookkeeping) and says what it is on the wire.
    ``report_frontier`` has the same checkpoint-round meaning as on
    :class:`ExploreCommand`.
    """

    report_frontier: bool = False


@dataclass(frozen=True)
class ExportCommand:
    """Export up to ``count`` candidate jobs as an encoded JobTree."""

    count: int


@dataclass(frozen=True)
class ImportCommand:
    """Import the encoded JobTree into this worker's frontier.

    ``fence_paths`` accompany recovered jobs (a dead worker's re-queued
    territory): subtrees nested inside the imported region that live workers
    still own, installed as fence nodes before the import.  ``recovered``
    marks the import as failure recovery for the worker's statistics.
    """

    encoded_jobs: object
    fence_paths: Tuple[Tuple[int, ...], ...] = ()
    recovered: bool = False


@dataclass(frozen=True)
class FinalizeCommand:
    """Ship back the full per-worker results."""


@dataclass(frozen=True)
class StopCommand:
    """Exit the worker loop."""


# -- replies (worker -> coordinator) -----------------------------------------------------


@dataclass(frozen=True)
class ReadyReply:
    """Worker built its program/executor; ``line_count`` lets the coordinator
    verify every process compiled the same program (replay depends on it)."""

    worker_id: int
    line_count: int


@dataclass(frozen=True)
class StatusReply:
    """Post-round status: the §3.3 status update, plus result counters."""

    worker_id: int
    queue_length: int
    useful_instructions: int
    replay_instructions: int
    coverage_bits: int
    paths_completed: int
    bugs_found: int
    broken_replays: int
    #: Encoded JobTree of the worker's candidate paths; present only when
    #: the coordinator asked for it (checkpoint rounds).
    frontier: Optional[object] = None
    #: Bug reports and generated test cases found so far; attached only on
    #: checkpoint rounds (``report_frontier``) so snapshots are
    #: self-contained without inflating the steady-state wire cost.
    bugs: Optional[Tuple[BugReport, ...]] = None
    test_cases: Optional[Tuple[TestCase, ...]] = None
    #: Buffered trace events since the last reply (only when the run is
    #: traced; the coordinator ingests them into the single trace file).
    events: Optional[Tuple[Dict, ...]] = None
    #: The worker solver's raw cache/solver counters.  Piggybacked on every
    #: status so the coordinator holds a last-known copy: when a worker dies
    #: before its FinalReply, these counters still enter the aggregate and
    #: post-recovery cache hit rates are not inflated.
    cache_counters: Optional[Dict[str, int]] = None


@dataclass(frozen=True)
class ExportReply:
    """The encoded job tree (None when the worker had nothing to give)."""

    worker_id: int
    encoded_jobs: Optional[object]
    job_count: int


@dataclass(frozen=True)
class ImportReply:
    worker_id: int
    imported: int


@dataclass
class FinalReply:
    """Everything the coordinator needs to build the merged ClusterResult."""

    worker_id: int
    stats: WorkerStats
    paths_completed: int
    covered_lines: Set[int] = field(default_factory=set)
    bugs: List[BugReport] = field(default_factory=list)
    test_cases: List[TestCase] = field(default_factory=list)
    cache_counters: Dict[str, int] = field(default_factory=dict)
    #: The worker solver's query-latency histogram (bounded reservoir, a
    #: few KB), merged coordinator-side into the run-level p50/p99 on the
    #: final ``solver_query`` trace event.
    latency: Optional[Histogram] = None


@dataclass(frozen=True)
class ErrorReply:
    """A worker crashed; ``details`` carries the formatted traceback."""

    worker_id: int
    details: str
