"""Multiprocess exploration: real cores behind the same cluster protocol.

The in-process clusters (:mod:`repro.cluster`) simulate the paper's
distributed architecture on virtual time, and the threaded variant adds OS
threads -- but a pure-Python interpreter under the GIL leaves the extra cores
mostly idle.  This package runs the same worker/load-balancer protocol across
*worker processes*, exchanging only the small picklable messages the paper's
design already calls for (§3.2): status updates, transfer requests, and
path-encoded :class:`~repro.cluster.jobs.JobTree` payloads that the
destination process materializes with
:func:`~repro.cluster.replay.replay_path`.

Because live execution states and programs built from closures do not
pickle, work ships as ``(spec_name, path)`` pairs: :mod:`repro.distrib.specs`
keeps a registry of named test factories, and every worker process rebuilds
the program locally from the spec before replaying paths into it.

Public pieces:

* :mod:`repro.distrib.specs` -- the test-spec registry
  (:func:`~repro.distrib.specs.resolve_test` and friends).
* :class:`~repro.distrib.cluster.ProcessCloud9Cluster` -- the coordinator,
  registered as the ``"process"`` backend of :mod:`repro.api.runner`; with
  ``ProcessClusterConfig(transport="tcp")`` (the ``"tcp"`` backend) it
  drives remote worker agents over the :mod:`repro.net` socket transport
  instead of local processes.
* :class:`~repro.distrib.worker.DistribWorker` -- the per-worker command
  loop (also drivable in-process, which is how the unit tests exercise
  broken-replay handling without forking), shared verbatim by forked
  worker processes and remote TCP agents.
"""

from repro.distrib.cluster import ProcessCloud9Cluster, ProcessClusterConfig
from repro.distrib.specs import available_specs, register_spec, resolve_test
from repro.distrib.worker import DistribWorker

__all__ = [
    "ProcessCloud9Cluster",
    "ProcessClusterConfig",
    "DistribWorker",
    "available_specs",
    "register_spec",
    "resolve_test",
]
