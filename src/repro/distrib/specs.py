"""The test-spec registry: names that worker processes can rebuild tests from.

A :class:`~repro.testing.symbolic_test.SymbolicTest` holds a compiled program
and (often) setup closures, neither of which pickles, so a process-based
backend cannot ship the test object itself.  Instead it ships a *spec*: the
registered name of a factory plus the keyword arguments it was called with.
Every worker process imports this registry, calls :func:`resolve_test` with
the shipped ``(spec_name, spec_params)`` pair, and ends up with its own
private program, executor, solver and strategy -- the shared-nothing worker
the paper's architecture requires.  From then on, only ``(spec, path)`` jobs
and status/transfer messages cross the process boundary.

Every target under :mod:`repro.targets` is pre-registered (lazily, on first
lookup).  User code adds its own with :func:`register_spec`; when using the
``"spawn"`` start method, list the registering module in
``ProcessClusterConfig.spec_modules`` so child processes import it too
(``"fork"``, the default where available, inherits the parent's registry).
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - avoid import cycle at module load
    from repro.testing.symbolic_test import SymbolicTest

SpecFactory = Callable[..., "SymbolicTest"]

_REGISTRY: Dict[str, SpecFactory] = {}
_LOCK = threading.Lock()
_BUILTINS_LOADED = False

__all__ = ["register_spec", "get_spec", "resolve_test", "available_specs"]


def register_spec(name: str, factory: SpecFactory,
                  replace: bool = False) -> SpecFactory:
    """Register a named symbolic-test factory.

    The factory must be importable/definable in every worker process and
    accept only picklable keyword arguments; given the same arguments it must
    build the same program (path replay across processes relies on
    deterministic fork structure).
    """
    if not name or not isinstance(name, str):
        raise ValueError("spec name must be a non-empty string")
    if not callable(factory):
        raise TypeError("spec factory must be callable, got %r" % (factory,))
    with _LOCK:
        if not replace and name in _REGISTRY:
            raise ValueError("spec %r is already registered "
                             "(pass replace=True to override)" % name)
        _REGISTRY[name] = factory
    return factory


def get_spec(name: str) -> SpecFactory:
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            "unknown test spec %r (available: %s); register it with "
            "repro.distrib.specs.register_spec" %
            (name, ", ".join(available_specs()))) from None


def resolve_test(name: str, **params: object) -> "SymbolicTest":
    """Build the named test and stamp it with its spec reference.

    The stamped ``spec_name``/``spec_params`` are what lets
    ``test.run(backend="process")`` ship the test to worker processes.
    """
    test = get_spec(name)(**params)
    test.spec_name = name
    test.spec_params = dict(params)
    return test


def available_specs() -> List[str]:
    _ensure_builtins()
    return sorted(_REGISTRY)


# -- built-in specs: everything under repro/targets/ ------------------------------------


def _ensure_builtins() -> None:
    """Register the stock targets on first use.

    Deferred because importing :mod:`repro.targets` pulls in the testing and
    api layers; doing it at module-import time would create a cycle.
    """
    global _BUILTINS_LOADED
    with _LOCK:
        if _BUILTINS_LOADED:
            return
        _BUILTINS_LOADED = True
        from repro.targets import (
            bandicoot, coreutils, curl, ghttpd, httpd, libevent, lighttpd,
            memcached, pbzip, printf, prodcons, rsync, testcmd)
        from repro.targets.lighttpd import (
            VERSION_1_4_12, VERSION_1_4_13, VERSION_FIXED)

        def _lighttpd_factory(version):
            def factory(**params):
                return lighttpd.make_symbolic_fragmentation_test(version, **params)
            return factory

        def _coreutils_factory(utility):
            def factory(**params):
                return coreutils.make_utility_test(utility, **params)
            return factory

        builtins: Dict[str, SpecFactory] = {
            "printf": printf.make_symbolic_test,
            "testcmd": testcmd.make_symbolic_test,
            "memcached-packets": memcached.make_symbolic_packets_test,
            "memcached-binary": memcached.make_binary_suite_test,
            "memcached-fault": memcached.make_fault_injection_test,
            "memcached-udp-hang": memcached.make_udp_hang_test,
            "ghttpd": ghttpd.make_symbolic_test,
            "httpd-header": httpd.make_symbolic_header_test,
            "httpd-fault": httpd.make_fault_injection_test,
            "curl-glob": curl.make_globbing_test,
            "libevent": libevent.make_symbolic_test,
            "rsync": rsync.make_symbolic_test,
            "pbzip": pbzip.make_symbolic_test,
            "bandicoot": bandicoot.make_get_exploration_test,
            "prodcons": prodcons.make_benchmark_test,
            "lighttpd-frag-1.4.12": _lighttpd_factory(VERSION_1_4_12),
            "lighttpd-frag-1.4.13": _lighttpd_factory(VERSION_1_4_13),
            "lighttpd-frag-fixed": _lighttpd_factory(VERSION_FIXED),
        }
        for utility in coreutils.utility_names():
            builtins["coreutils-%s" % utility] = _coreutils_factory(utility)
        for name, factory in builtins.items():
            _REGISTRY.setdefault(name, factory)
