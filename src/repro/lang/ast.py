"""Abstract syntax tree of the program-under-test language."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class BinaryOp(enum.Enum):
    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"
    MOD = "%"
    AND = "&"
    OR = "|"
    XOR = "^"
    SHL = "<<"
    SHR = ">>"
    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    LAND = "&&"
    LOR = "||"


class UnaryOp(enum.Enum):
    NEG = "-"
    NOT = "!"
    BNOT = "~"


class Expr:
    """Base class for expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class Const(Expr):
    """An integer constant; width defaults to the language's 32-bit int."""

    value: int
    width: int = 32


@dataclass(frozen=True)
class StrConst(Expr):
    """A byte-string constant; evaluates to the address of read-only data."""

    data: bytes


@dataclass(frozen=True)
class Var(Expr):
    """A reference to a local variable or parameter."""

    name: str


@dataclass(frozen=True)
class BinExpr(Expr):
    op: BinaryOp
    left: Expr
    right: Expr


@dataclass(frozen=True)
class UnExpr(Expr):
    op: UnaryOp
    operand: Expr


@dataclass(frozen=True)
class Index(Expr):
    """Byte load ``base[offset]`` from a buffer pointer."""

    base: Expr
    offset: Expr


@dataclass(frozen=True)
class CallExpr(Expr):
    """Call of a program function or of a native (modeled/POSIX) function."""

    name: str
    args: Tuple[Expr, ...]


class Stmt:
    """Base class for statements."""

    __slots__ = ()


@dataclass
class VarDecl(Stmt):
    """Declare (and initialize) a local variable."""

    name: str
    init: Expr


@dataclass
class Assign(Stmt):
    name: str
    value: Expr


@dataclass
class Store(Stmt):
    """Byte store ``base[offset] = value``."""

    base: Expr
    offset: Expr
    value: Expr


@dataclass
class If(Stmt):
    cond: Expr
    then_body: List[Stmt]
    else_body: List[Stmt] = field(default_factory=list)


@dataclass
class While(Stmt):
    cond: Expr
    body: List[Stmt]


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class ExprStmt(Stmt):
    """Evaluate an expression for its side effects (usually a call)."""

    expr: Expr


@dataclass
class Assert(Stmt):
    cond: Expr
    message: str = "assertion failed"


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Function:
    """A function of the program under test."""

    name: str
    params: List[str]
    body: List[Stmt]

    def __post_init__(self) -> None:
        if len(set(self.params)) != len(self.params):
            raise ValueError("duplicate parameter names in function %r" % self.name)


@dataclass
class Program:
    """A whole program: a set of functions plus an entry point."""

    name: str
    functions: Dict[str, Function]
    entry: str = "main"

    def __post_init__(self) -> None:
        if self.entry not in self.functions:
            raise ValueError(
                "entry function %r not defined in program %r" % (self.entry, self.name)
            )

    def function(self, name: str) -> Function:
        return self.functions[name]
