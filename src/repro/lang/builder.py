"""Convenience constructors for building programs from Python.

Target programs (``repro.targets``) are written with these helpers, e.g.::

    from repro import lang as L

    parse = L.func(
        "parse", ["buf", "n"],
        L.decl("i", 0),
        L.while_(L.lt(L.var("i"), L.var("n")),
            L.if_(L.eq(L.index(L.var("buf"), L.var("i")), ord("{")),
                [L.ret(1)]),
            L.assign("i", L.add(L.var("i"), 1)),
        ),
        L.ret(0),
    )
    prog = L.program("demo", parse, entry="parse")

Integer literals are accepted wherever an expression is expected and are
coerced to :class:`~repro.lang.ast.Const`; ``bytes``/``str`` literals are
coerced to :class:`~repro.lang.ast.StrConst`.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

from repro.lang.ast import (
    Assert,
    Assign,
    BinaryOp,
    BinExpr,
    Break,
    CallExpr,
    Const,
    Continue,
    Expr,
    ExprStmt,
    Function,
    If,
    Index,
    Program,
    Return,
    Stmt,
    Store,
    StrConst,
    UnaryOp,
    UnExpr,
    Var,
    VarDecl,
    While,
)

ExprLike = Union[Expr, int, bytes, str]
StmtOrList = Union[Stmt, Sequence[Stmt]]


def _expr(value: ExprLike) -> Expr:
    """Coerce Python literals into language expressions."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        return Const(int(value))
    if isinstance(value, int):
        return Const(value)
    if isinstance(value, bytes):
        return StrConst(value)
    if isinstance(value, str):
        return StrConst(value.encode("latin-1"))
    raise TypeError("cannot coerce %r to an expression" % (value,))


def _stmts(items: Iterable[StmtOrList]) -> List[Stmt]:
    """Flatten a mix of statements and statement lists."""
    out: List[Stmt] = []
    for item in items:
        if isinstance(item, Stmt):
            out.append(item)
        elif isinstance(item, (list, tuple)):
            out.extend(_stmts(item))
        else:
            raise TypeError("expected a statement, got %r" % (item,))
    return out


# -- expressions -----------------------------------------------------------


def const(value: int, width: int = 32) -> Const:
    return Const(value, width)


def strconst(data: Union[bytes, str]) -> StrConst:
    if isinstance(data, str):
        data = data.encode("latin-1")
    return StrConst(data)


def var(name: str) -> Var:
    return Var(name)


def _bin(op: BinaryOp, a: ExprLike, b: ExprLike) -> BinExpr:
    return BinExpr(op, _expr(a), _expr(b))


def add(a: ExprLike, b: ExprLike) -> BinExpr:
    return _bin(BinaryOp.ADD, a, b)


def sub(a: ExprLike, b: ExprLike) -> BinExpr:
    return _bin(BinaryOp.SUB, a, b)


def mul(a: ExprLike, b: ExprLike) -> BinExpr:
    return _bin(BinaryOp.MUL, a, b)


def div(a: ExprLike, b: ExprLike) -> BinExpr:
    return _bin(BinaryOp.DIV, a, b)


def mod(a: ExprLike, b: ExprLike) -> BinExpr:
    return _bin(BinaryOp.MOD, a, b)


def band(a: ExprLike, b: ExprLike) -> BinExpr:
    return _bin(BinaryOp.AND, a, b)


def bor(a: ExprLike, b: ExprLike) -> BinExpr:
    return _bin(BinaryOp.OR, a, b)


def bxor(a: ExprLike, b: ExprLike) -> BinExpr:
    return _bin(BinaryOp.XOR, a, b)


def shl(a: ExprLike, b: ExprLike) -> BinExpr:
    return _bin(BinaryOp.SHL, a, b)


def shr(a: ExprLike, b: ExprLike) -> BinExpr:
    return _bin(BinaryOp.SHR, a, b)


def eq(a: ExprLike, b: ExprLike) -> BinExpr:
    return _bin(BinaryOp.EQ, a, b)


def ne(a: ExprLike, b: ExprLike) -> BinExpr:
    return _bin(BinaryOp.NE, a, b)


def lt(a: ExprLike, b: ExprLike) -> BinExpr:
    return _bin(BinaryOp.LT, a, b)


def le(a: ExprLike, b: ExprLike) -> BinExpr:
    return _bin(BinaryOp.LE, a, b)


def gt(a: ExprLike, b: ExprLike) -> BinExpr:
    return _bin(BinaryOp.GT, a, b)


def ge(a: ExprLike, b: ExprLike) -> BinExpr:
    return _bin(BinaryOp.GE, a, b)


def land(a: ExprLike, b: ExprLike) -> BinExpr:
    return _bin(BinaryOp.LAND, a, b)


def lor(a: ExprLike, b: ExprLike) -> BinExpr:
    return _bin(BinaryOp.LOR, a, b)


def lnot(a: ExprLike) -> UnExpr:
    return UnExpr(UnaryOp.NOT, _expr(a))


def neg(a: ExprLike) -> UnExpr:
    return UnExpr(UnaryOp.NEG, _expr(a))


def bnot(a: ExprLike) -> UnExpr:
    return UnExpr(UnaryOp.BNOT, _expr(a))


def index(base: ExprLike, offset: ExprLike) -> Index:
    return Index(_expr(base), _expr(offset))


def call(name: str, *args: ExprLike) -> CallExpr:
    return CallExpr(name, tuple(_expr(a) for a in args))


# -- statements ------------------------------------------------------------


def decl(name: str, init: ExprLike = 0) -> VarDecl:
    return VarDecl(name, _expr(init))


def assign(name: str, value: ExprLike) -> Assign:
    return Assign(name, _expr(value))


def store(base: ExprLike, offset: ExprLike, value: ExprLike) -> Store:
    return Store(_expr(base), _expr(offset), _expr(value))


def if_(cond: ExprLike, then_body: Sequence[StmtOrList],
        else_body: Sequence[StmtOrList] = ()) -> If:
    return If(_expr(cond), _stmts(then_body), _stmts(else_body))


def while_(cond: ExprLike, *body: StmtOrList) -> While:
    return While(_expr(cond), _stmts(body))


def ret(value: ExprLike = None) -> Return:
    return Return(None if value is None else _expr(value))


def expr_stmt(expr: ExprLike) -> ExprStmt:
    return ExprStmt(_expr(expr))


def assert_(cond: ExprLike, message: str = "assertion failed") -> Assert:
    return Assert(_expr(cond), message)


def break_() -> Break:
    return Break()


def continue_() -> Continue:
    return Continue()


def func(name: str, params: Sequence[str], *body: StmtOrList) -> Function:
    return Function(name, list(params), _stmts(body))


def program(name: str, *functions: Function, entry: str = "main") -> Program:
    table = {}
    for fn in functions:
        if fn.name in table:
            raise ValueError("duplicate function %r in program %r" % (fn.name, name))
        table[fn.name] = fn
    return Program(name, table, entry=entry)
