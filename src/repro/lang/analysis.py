"""Static analyses over compiled programs.

These are small helpers used by the coverage machinery and the benchmark
harness (e.g. the Coreutils coverage experiment needs program sizes in lines).
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.lang.ast import CallExpr, BinExpr, Expr, Index, UnExpr
from repro.lang.compiler import CompiledProgram, Opcode


def program_line_count(compiled: CompiledProgram) -> int:
    """Number of coverable source lines in a compiled program."""
    return compiled.line_count


def program_function_names(compiled: CompiledProgram) -> List[str]:
    return sorted(compiled.functions)


def lines_of_function(compiled: CompiledProgram, name: str) -> Set[int]:
    """The set of line numbers belonging to one function."""
    return {instr.line for instr in compiled.function(name).instructions}


def _called_names(expr: Expr) -> Set[str]:
    out: Set[str] = set()
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, CallExpr):
            out.add(node.name)
            stack.extend(node.args)
        elif isinstance(node, BinExpr):
            stack.extend((node.left, node.right))
        elif isinstance(node, UnExpr):
            stack.append(node.operand)
        elif isinstance(node, Index):
            stack.extend((node.base, node.offset))
    return out


def call_graph(compiled: CompiledProgram) -> Dict[str, Set[str]]:
    """Map each function to the set of function names it may call.

    Native (modeled/POSIX) functions appear as callees even though they are
    not defined in the program; callers can filter by membership in
    ``compiled.functions``.
    """
    graph: Dict[str, Set[str]] = {}
    for name, fn in compiled.functions.items():
        callees: Set[str] = set()
        for instr in fn.instructions:
            if instr.opcode == Opcode.CALL and instr.name is not None:
                callees.add(instr.name)
        graph[name] = callees
    return graph


def reachable_functions(compiled: CompiledProgram, root: str = None) -> Set[str]:
    """Program functions reachable from ``root`` (defaults to the entry point)."""
    graph = call_graph(compiled)
    start = root if root is not None else compiled.entry
    if start not in compiled.functions:
        return set()
    seen: Set[str] = set()
    stack = [start]
    while stack:
        name = stack.pop()
        if name in seen or name not in compiled.functions:
            continue
        seen.add(name)
        stack.extend(graph.get(name, ()))
    return seen


def branch_count(compiled: CompiledProgram) -> int:
    """Number of BRANCH instructions (an upper bound on forking points)."""
    return sum(
        1
        for fn in compiled.functions.values()
        for instr in fn.instructions
        if instr.opcode == Opcode.BRANCH
    )
