"""Lowering of the structured AST into a flat instruction stream.

The symbolic execution engine interprets :class:`CompiledProgram` objects.
Each function body becomes a list of :class:`Instruction`; control flow is
expressed with ``BRANCH``/``JUMP`` to instruction indices, which makes the
execution state's program counter a simple ``(function, index)`` pair that is
cheap to clone when the state forks.

Function calls embedded inside expressions are hoisted into explicit ``CALL``
instructions assigning compiler temporaries, so the expressions actually
carried by instructions are pure and can be evaluated without side effects.

Every statement receives a program-wide *line number*; instructions remember
the line of the statement they came from.  Line-coverage bit vectors (the
paper's coverage overlay, §3.3) are indexed by these line numbers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lang.ast import (
    Assert,
    Assign,
    BinaryOp,
    BinExpr,
    Break,
    CallExpr,
    Const,
    Continue,
    Expr,
    ExprStmt,
    Function,
    If,
    Index,
    Program,
    Return,
    Stmt,
    Store,
    StrConst,
    UnExpr,
    Var,
    VarDecl,
    While,
)


class CompileError(Exception):
    """Raised for malformed programs (e.g. break outside a loop)."""


class Opcode(enum.Enum):
    ASSIGN = "assign"      # dest <- expr
    CALL = "call"          # dest <- call name(args)
    STORE = "store"        # base[offset] <- value
    BRANCH = "branch"      # if cond goto true_target else false_target
    JUMP = "jump"          # goto target
    RET = "ret"            # return expr (or nothing)
    ASSERT = "assert"      # check cond, report bug otherwise


@dataclass
class Instruction:
    """One lowered instruction."""

    opcode: Opcode
    line: int
    dest: Optional[str] = None
    expr: Optional[Expr] = None
    name: Optional[str] = None
    args: Tuple[Expr, ...] = ()
    base: Optional[Expr] = None
    offset: Optional[Expr] = None
    value: Optional[Expr] = None
    target: Optional[int] = None
    false_target: Optional[int] = None
    message: Optional[str] = None

    def __repr__(self) -> str:
        if self.opcode == Opcode.ASSIGN:
            return "ASSIGN %s <- %r (line %d)" % (self.dest, self.expr, self.line)
        if self.opcode == Opcode.CALL:
            return "CALL %s <- %s(%s) (line %d)" % (
                self.dest, self.name, ", ".join(map(repr, self.args)), self.line)
        if self.opcode == Opcode.BRANCH:
            return "BRANCH %r ? %s : %s (line %d)" % (
                self.expr, self.target, self.false_target, self.line)
        if self.opcode == Opcode.JUMP:
            return "JUMP %s (line %d)" % (self.target, self.line)
        if self.opcode == Opcode.RET:
            return "RET %r (line %d)" % (self.expr, self.line)
        if self.opcode == Opcode.STORE:
            return "STORE %r[%r] <- %r (line %d)" % (
                self.base, self.offset, self.value, self.line)
        return "ASSERT %r (line %d)" % (self.expr, self.line)


@dataclass
class CompiledFunction:
    name: str
    params: List[str]
    instructions: List[Instruction]

    def __len__(self) -> int:
        return len(self.instructions)


@dataclass
class CompiledProgram:
    """A program lowered to instruction streams plus metadata."""

    name: str
    entry: str
    functions: Dict[str, CompiledFunction]
    line_count: int
    data: Dict[bytes, int] = field(default_factory=dict)

    def function(self, name: str) -> CompiledFunction:
        return self.functions[name]

    @property
    def total_instructions(self) -> int:
        return sum(len(f) for f in self.functions.values())


class _FunctionCompiler:
    """Compiles one function; shares the line counter of the program compiler."""

    def __init__(self, program_compiler: "_ProgramCompiler", fn: Function):
        self._pc = program_compiler
        self._fn = fn
        self._instructions: List[Instruction] = []
        self._temp_counter = 0
        # Stack of (break_patches, continue_target) for enclosing loops.
        self._loop_stack: List[Tuple[List[int], int]] = []

    # -- helpers -----------------------------------------------------------

    def _emit(self, instr: Instruction) -> int:
        self._instructions.append(instr)
        return len(self._instructions) - 1

    def _new_temp(self) -> str:
        self._temp_counter += 1
        return "%%t%d" % self._temp_counter

    # -- expression lowering -------------------------------------------------

    def _lower_expr(self, expr: Expr, line: int) -> Expr:
        """Hoist calls out of an expression, returning a call-free expression.

        ``&&`` and ``||`` are lowered to explicit control flow so that they
        short-circuit exactly like C: the right operand (including any calls
        or memory accesses it contains) is only evaluated when the left
        operand does not already decide the result.
        """
        if isinstance(expr, (Const, StrConst, Var)):
            return expr
        if isinstance(expr, BinExpr):
            if expr.op in (BinaryOp.LAND, BinaryOp.LOR):
                return self._lower_short_circuit(expr, line)
            return BinExpr(expr.op,
                           self._lower_expr(expr.left, line),
                           self._lower_expr(expr.right, line))
        if isinstance(expr, UnExpr):
            return UnExpr(expr.op, self._lower_expr(expr.operand, line))
        if isinstance(expr, Index):
            return Index(self._lower_expr(expr.base, line),
                         self._lower_expr(expr.offset, line))
        if isinstance(expr, CallExpr):
            args = tuple(self._lower_expr(a, line) for a in expr.args)
            temp = self._new_temp()
            self._emit(Instruction(Opcode.CALL, line, dest=temp,
                                   name=expr.name, args=args))
            return Var(temp)
        raise CompileError("unsupported expression node %r" % (expr,))

    def _lower_short_circuit(self, expr: BinExpr, line: int) -> Expr:
        """Lower ``a && b`` / ``a || b`` into branches over a result temp."""
        is_and = expr.op == BinaryOp.LAND
        temp = self._new_temp()
        left = self._lower_expr(expr.left, line)
        # Default outcome if the right operand is skipped: 0 for &&, 1 for ||.
        self._emit(Instruction(Opcode.ASSIGN, line, dest=temp,
                               expr=Const(0 if is_and else 1)))
        branch_idx = self._emit(Instruction(Opcode.BRANCH, line, expr=left))
        # For &&: evaluate the right side only when the left is true.
        # For ||: evaluate the right side only when the left is false.
        right_block_start = len(self._instructions)
        right = self._lower_expr(expr.right, line)
        self._emit(Instruction(Opcode.ASSIGN, line, dest=temp,
                               expr=BinExpr(BinaryOp.NE, right, Const(0))))
        end = len(self._instructions)
        if is_and:
            self._instructions[branch_idx].target = right_block_start
            self._instructions[branch_idx].false_target = end
        else:
            self._instructions[branch_idx].target = end
            self._instructions[branch_idx].false_target = right_block_start
        return Var(temp)

    # -- statement lowering ---------------------------------------------------

    def compile(self) -> CompiledFunction:
        self._compile_block(self._fn.body)
        # Implicit `return 0` at the end of a function.
        self._emit(Instruction(Opcode.RET, self._pc.next_line(), expr=Const(0)))
        return CompiledFunction(self._fn.name, list(self._fn.params),
                                self._instructions)

    def _compile_block(self, body: Sequence[Stmt]) -> None:
        for stmt in body:
            self._compile_stmt(stmt)

    def _compile_stmt(self, stmt: Stmt) -> None:
        line = self._pc.next_line()
        if isinstance(stmt, (VarDecl, Assign)):
            name = stmt.name
            init = stmt.init if isinstance(stmt, VarDecl) else stmt.value
            expr = self._lower_expr(init, line)
            self._emit(Instruction(Opcode.ASSIGN, line, dest=name, expr=expr))
        elif isinstance(stmt, Store):
            base = self._lower_expr(stmt.base, line)
            offset = self._lower_expr(stmt.offset, line)
            value = self._lower_expr(stmt.value, line)
            self._emit(Instruction(Opcode.STORE, line, base=base,
                                   offset=offset, value=value))
        elif isinstance(stmt, ExprStmt):
            expr = self._lower_expr(stmt.expr, line)
            if not isinstance(expr, Var):
                # A pure expression with no call has no effect; still emit an
                # assignment to a scratch temp so the line is coverable.
                self._emit(Instruction(Opcode.ASSIGN, line,
                                       dest=self._new_temp(), expr=expr))
        elif isinstance(stmt, Return):
            expr = (self._lower_expr(stmt.value, line)
                    if stmt.value is not None else Const(0))
            self._emit(Instruction(Opcode.RET, line, expr=expr))
        elif isinstance(stmt, Assert):
            expr = self._lower_expr(stmt.cond, line)
            self._emit(Instruction(Opcode.ASSERT, line, expr=expr,
                                   message=stmt.message))
        elif isinstance(stmt, If):
            self._compile_if(stmt, line)
        elif isinstance(stmt, While):
            self._compile_while(stmt, line)
        elif isinstance(stmt, Break):
            if not self._loop_stack:
                raise CompileError("break outside of a loop in %r" % self._fn.name)
            idx = self._emit(Instruction(Opcode.JUMP, line))
            self._loop_stack[-1][0].append(idx)
        elif isinstance(stmt, Continue):
            if not self._loop_stack:
                raise CompileError("continue outside of a loop in %r" % self._fn.name)
            self._emit(Instruction(Opcode.JUMP, line,
                                   target=self._loop_stack[-1][1]))
        else:
            raise CompileError("unsupported statement %r" % (stmt,))

    def _compile_if(self, stmt: If, line: int) -> None:
        cond = self._lower_expr(stmt.cond, line)
        branch_idx = self._emit(Instruction(Opcode.BRANCH, line, expr=cond))
        self._compile_block(stmt.then_body)
        if stmt.else_body:
            jump_over_else = self._emit(Instruction(Opcode.JUMP, line))
            else_start = len(self._instructions)
            self._compile_block(stmt.else_body)
            end = len(self._instructions)
            self._instructions[branch_idx].target = branch_idx + 1
            self._instructions[branch_idx].false_target = else_start
            self._instructions[jump_over_else].target = end
        else:
            end = len(self._instructions)
            self._instructions[branch_idx].target = branch_idx + 1
            self._instructions[branch_idx].false_target = end

    def _compile_while(self, stmt: While, line: int) -> None:
        loop_start = len(self._instructions)
        cond = self._lower_expr(stmt.cond, line)
        branch_idx = self._emit(Instruction(Opcode.BRANCH, line, expr=cond))
        break_patches: List[int] = []
        self._loop_stack.append((break_patches, loop_start))
        self._compile_block(stmt.body)
        self._loop_stack.pop()
        self._emit(Instruction(Opcode.JUMP, line, target=loop_start))
        end = len(self._instructions)
        self._instructions[branch_idx].target = branch_idx + 1
        self._instructions[branch_idx].false_target = end
        for idx in break_patches:
            self._instructions[idx].target = end


class _ProgramCompiler:
    def __init__(self, program: Program):
        self._program = program
        self._line = 0

    def next_line(self) -> int:
        line = self._line
        self._line += 1
        return line

    def compile(self) -> CompiledProgram:
        functions: Dict[str, CompiledFunction] = {}
        data: Dict[bytes, int] = {}
        for name in sorted(self._program.functions):
            fn = self._program.functions[name]
            compiled = _FunctionCompiler(self, fn).compile()
            functions[name] = compiled
            for instr in compiled.instructions:
                for blob in _string_constants_of(instr):
                    data.setdefault(blob, len(data))
        return CompiledProgram(
            name=self._program.name,
            entry=self._program.entry,
            functions=functions,
            line_count=self._line,
            data=data,
        )


def _string_constants_of(instr: Instruction) -> List[bytes]:
    """All StrConst payloads referenced by an instruction."""
    out: List[bytes] = []

    def walk(expr: Optional[Expr]) -> None:
        if expr is None:
            return
        if isinstance(expr, StrConst):
            out.append(expr.data)
        elif isinstance(expr, BinExpr):
            walk(expr.left)
            walk(expr.right)
        elif isinstance(expr, UnExpr):
            walk(expr.operand)
        elif isinstance(expr, Index):
            walk(expr.base)
            walk(expr.offset)
        elif isinstance(expr, CallExpr):
            for a in expr.args:
                walk(a)

    walk(instr.expr)
    walk(instr.base)
    walk(instr.offset)
    walk(instr.value)
    for a in instr.args:
        walk(a)
    return out


def compile_program(program: Program) -> CompiledProgram:
    """Lower a :class:`~repro.lang.ast.Program` into executable form."""
    return _ProgramCompiler(program).compile()
