#!/usr/bin/env python3
"""Quickstart: one symbolic test, every backend, one `run` call.

The program under test parses a tiny "command packet": a 4-byte buffer whose
first byte selects an operation.  The symbolic test marks the whole packet
symbolic, so a single test covers every possible packet, and the engine
generates one concrete test case per explored path -- including the one that
triggers the (deliberate) division-by-zero-style assertion failure.

The point of the unified API is that the *same* test runs unchanged on a
single engine, on a simulated Cloud9 cluster, or on a thread-backed cluster:
``test.run(backend=..., ...)`` always returns the same ``RunResult`` shape,
so the backends compare apples-to-apples.

Run with:  python examples/quickstart.py
"""

from repro import lang as L
from repro.api import ExplorationLimits
from repro.testing import SymbolicTest


def build_program() -> L.Program:
    """A toy packet handler with a bug on one specific input."""
    handle = L.func(
        "handle", ["pkt", "n"],
        L.if_(L.lt(L.var("n"), 2), [L.ret(0xFFFFFFFF)]),
        L.decl("op", L.index(L.var("pkt"), 0)),
        L.decl("arg", L.index(L.var("pkt"), 1)),
        L.if_(L.eq(L.var("op"), ord("a")), [L.ret(L.add(L.var("arg"), 1))]),
        L.if_(L.eq(L.var("op"), ord("s")), [L.ret(L.sub(L.var("arg"), 1))]),
        L.if_(L.eq(L.var("op"), ord("d")), [
            # BUG: the handler asserts the argument is non-zero instead of
            # checking it -- symbolic execution finds the failing input.
            L.assert_(L.ne(L.var("arg"), 0), "division by zero in 'd' command"),
            L.ret(L.div(100, L.var("arg"))),
        ]),
        L.ret(0),
    )
    main = L.func(
        "main", [],
        L.decl("pkt", L.call("cloud9_symbolic_buffer", 4, L.strconst("packet"))),
        L.ret(L.call("handle", L.var("pkt"), 4)),
    )
    return L.program("quickstart", handle, main)


def main() -> None:
    test = SymbolicTest("quickstart", build_program())

    print("=== single-engine run (plain KLEE / 1-worker Cloud9) ===")
    single = test.run()  # backend="single" is the default
    print("paths explored:   %d" % single.paths_completed)
    print("line coverage:    %.1f%%" % single.coverage_percent)
    print("bugs found:       %d" % len(single.bugs))
    for bug in single.bugs:
        print("  -", bug.summary())
        if bug.test_case is not None:
            print("    reproducer packet:", bug.test_case.input_bytes("packet"))
    print("generated test cases:")
    for case in single.test_cases[:8]:
        print("  packet=%-18r exit=%s%s" % (
            case.input_bytes("packet"), case.exit_code,
            "  [error path]" if case.is_error else ""))

    print()
    print("=== 4-worker Cloud9 cluster run (same test, same call shape) ===")
    cluster = test.run(backend="cluster", workers=4, instructions_per_round=100)
    print("paths explored:   %d" % cluster.paths_completed)
    print("virtual rounds:   %d" % cluster.rounds_executed)
    print("states moved:     %d (job transfers between workers)"
          % cluster.states_transferred)
    print("bugs found:       %s" % ", ".join(cluster.bug_summaries()))

    print()
    print("=== bug hunting with uniform limits ===")
    limits = ExplorationLimits(stop_on_first_bug=True, max_rounds=200)
    for backend in ("single", "cluster", "threaded"):
        options = {} if backend == "single" else {"workers": 2,
                                                  "instructions_per_round": 100}
        result = test.run(backend=backend, limits=limits, **options)
        print("%-9s found %d bug(s) after %d instructions"
              % (backend, len(result.bugs), result.total_instructions))


if __name__ == "__main__":
    main()
