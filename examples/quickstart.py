#!/usr/bin/env python3
"""Quickstart: write a symbolic test and run it on one engine and on a cluster.

The program under test parses a tiny "command packet": a 4-byte buffer whose
first byte selects an operation.  The symbolic test marks the whole packet
symbolic, so a single test covers every possible packet, and the engine
generates one concrete test case per explored path -- including the one that
triggers the (deliberate) division-by-zero-style assertion failure.

Run with:  python examples/quickstart.py
"""

from repro import lang as L
from repro.cluster import ClusterConfig
from repro.testing import SymbolicTest


def build_program() -> L.Program:
    """A toy packet handler with a bug on one specific input."""
    handle = L.func(
        "handle", ["pkt", "n"],
        L.if_(L.lt(L.var("n"), 2), [L.ret(0xFFFFFFFF)]),
        L.decl("op", L.index(L.var("pkt"), 0)),
        L.decl("arg", L.index(L.var("pkt"), 1)),
        L.if_(L.eq(L.var("op"), ord("a")), [L.ret(L.add(L.var("arg"), 1))]),
        L.if_(L.eq(L.var("op"), ord("s")), [L.ret(L.sub(L.var("arg"), 1))]),
        L.if_(L.eq(L.var("op"), ord("d")), [
            # BUG: the handler asserts the argument is non-zero instead of
            # checking it -- symbolic execution finds the failing input.
            L.assert_(L.ne(L.var("arg"), 0), "division by zero in 'd' command"),
            L.ret(L.div(100, L.var("arg"))),
        ]),
        L.ret(0),
    )
    main = L.func(
        "main", [],
        L.decl("pkt", L.call("cloud9_symbolic_buffer", 4, L.strconst("packet"))),
        L.ret(L.call("handle", L.var("pkt"), 4)),
    )
    return L.program("quickstart", handle, main)


def main() -> None:
    test = SymbolicTest("quickstart", build_program())

    print("=== single-engine run (plain KLEE / 1-worker Cloud9) ===")
    single = test.run_single()
    print("paths explored:   %d" % single.paths_completed)
    print("line coverage:    %.1f%%" % single.coverage_percent)
    print("bugs found:       %d" % len(single.bugs))
    for bug in single.bugs:
        print("  -", bug.summary())
        if bug.test_case is not None:
            print("    reproducer packet:", bug.test_case.input_bytes("packet"))
    print("generated test cases:")
    for case in single.test_cases[:8]:
        print("  packet=%-18r exit=%s%s" % (
            case.input_bytes("packet"), case.exit_code,
            "  [error path]" if case.is_error else ""))

    print()
    print("=== 4-worker Cloud9 cluster run ===")
    cluster_result = test.run_cluster(
        num_workers=4,
        cluster_config=ClusterConfig(num_workers=4, instructions_per_round=100),
    )
    print("paths explored:   %d" % cluster_result.paths_completed)
    print("virtual rounds:   %d" % cluster_result.rounds_executed)
    print("states moved:     %d (job transfers between workers)"
          % cluster_result.total_states_transferred)
    print("bugs found:       %s" % ", ".join(cluster_result.bug_summaries()))


if __name__ == "__main__":
    main()
