#!/usr/bin/env python3
"""Fault injection and environment control, end to end (paper §5.1-§5.2).

This example tests the Apache-httpd model three ways, mirroring the paper's
use case for a newly added ``X-NewExtension`` header:

1. a symbolic header value ("one symbolic test instead of hundreds of
   concrete ones") -- which also finds the latent division-by-zero in the
   buggy extension handler;
2. request fragmentation patterns set per descriptor, the mechanism that
   exposed the incomplete lighttpd fix in Table 6;
3. fault injection on the server socket, so error-handling paths that a
   concrete suite never reaches get explored too.

Run with:  python examples/fault_injection_and_env.py
"""

from repro.engine import BugKind
from repro.targets import httpd


def symbolic_header() -> None:
    print("=== 1. symbolic X-NewExtension header value ===")
    test = httpd.make_symbolic_header_test(value_length=2, buggy=True)
    result = test.run_single(max_steps=20_000)
    print("paths explored:     %d" % result.paths_completed)
    print("distinct outcomes:  %s"
          % sorted({tc.exit_code for tc in result.test_cases
                    if tc.exit_code is not None}))
    for bug in result.bugs:
        if bug.kind == BugKind.DIVISION_BY_ZERO:
            reproducer = bug.test_case.input_bytes("extension") if bug.test_case else b""
            print("found the level-0 throttle bug; reproducing header value: %r"
                  % reproducer)
    print()


def fragmentation() -> None:
    print("=== 2. request fragmentation patterns (per-fd ioctl) ===")
    for pattern in ([7, 40], [1, 1, 1, 1, 1, 42], [13, 13, 21]):
        test = httpd.make_fragmentation_test(pattern, header_value=b"n")
        result = test.run_single()
        verdict = "ok" if not result.bugs else "CRASH"
        print("pattern %-22s -> exit %s (%s)"
              % ("+".join(str(p) for p in pattern),
                 result.test_cases[0].exit_code, verdict))
    print()


def fault_injection() -> None:
    print("=== 3. fault injection on the server socket ===")
    test = httpd.make_fault_injection_test(header_value=b"n")
    result = test.run_single(max_steps=20_000)
    print("paths explored: %d" % result.paths_completed)
    for case in result.test_cases:
        faults = case.input_bytes("faults")
        injected = sum(1 for b in faults if b != 0)
        print("  exit=%-4s faults injected along the path: %d"
              % (case.exit_code, injected))
    print()


def main() -> None:
    symbolic_header()
    fragmentation()
    fault_injection()


if __name__ == "__main__":
    main()
