#!/usr/bin/env python3
"""Why Cloud9 balances load dynamically (paper §2, §7.4).

This example runs the same exhaustive symbolic test -- the printf
format-string workload of Fig. 8 -- on two parallel configurations:

* a Cloud9 cluster with dynamic partitioning and load balancing, and
* a static partitioning of the execution tree (the strawman the paper argues
  against: split once, never rebalance).

It then prints the per-round queue lengths of both runs so the imbalance is
visible directly: under static partitioning some workers drain their subtree
early and idle, while one worker grinds through the heaviest partition alone.

Run with:  python examples/static_vs_dynamic_partitioning.py
"""

from repro.targets import printf

WORKERS = 4
INSTRUCTIONS_PER_ROUND = 200


def queue_picture(result, label: str) -> None:
    print("--- %s ---" % label)
    print("rounds to exhaustion: %d   paths: %d   useful instructions: %d"
          % (result.rounds_executed, result.paths_completed,
             result.useful_instructions))
    print("round  " + "  ".join("w%d" % w for w in sorted(
        result.timeline.snapshots[0].queue_lengths)) + "   (candidate states per worker)")
    for snap in result.timeline.snapshots:
        lengths = [snap.queue_lengths[w] for w in sorted(snap.queue_lengths)]
        marker = "  <- idle worker(s)" if 0 in lengths and max(lengths) > 1 else ""
        print("%5d  %s%s" % (snap.round_index,
                             "  ".join("%2d" % l for l in lengths), marker))
    print()


def main() -> None:
    test = printf.make_symbolic_test(format_length=3)

    # Same test, two backends -- only the backend name changes.
    dynamic = test.run(backend="cluster", workers=WORKERS,
                       instructions_per_round=INSTRUCTIONS_PER_ROUND,
                       balance_interval=2)
    static = test.run(backend="static", workers=WORKERS,
                      instructions_per_round=INSTRUCTIONS_PER_ROUND)

    queue_picture(dynamic, "dynamic partitioning (Cloud9)")
    queue_picture(static, "static partitioning (no load balancing)")

    speedup = static.rounds_executed / max(dynamic.rounds_executed, 1)
    print("Dynamic balancing finished the exhaustive test %.1fx faster "
          "(in virtual rounds) than the static split." % speedup)


if __name__ == "__main__":
    main()
