#!/usr/bin/env python3
"""Multiprocess symbolic execution: real cores behind the same test.

The quickstart for the ``"process"`` backend (:mod:`repro.distrib`): resolve
a registered test spec, run it on one engine and then across worker
processes, and compare the merged results.  Worker processes never exchange
program state -- jobs travel as path-encoded trees (§3.2) and the receiving
process replays them -- so the printout also shows the quantities that make
that design visible: replay overhead, the prefix-sharing savings of the
JobTree transfer encoding, and the solver-cache hit rates each private
solver rebuilt after replay (§6).

Run with:  python examples/process_backend.py [workers]

Also used by CI as the multiprocessing smoke test (2 workers, tight limits).
"""

import sys

from repro.api import ExplorationLimits
from repro.distrib import specs


def describe(label, result):
    cache = result.cache_stats or {}
    print("%-8s workers=%d  wall=%.2fs  paths=%d  coverage=%.1f%%  bugs=%d" % (
        label, result.num_workers, result.wall_time, result.paths_completed,
        result.coverage_percent, len(result.bugs)))
    print("         replay overhead=%.1f%%  constraint-cache hits=%.0f%%  "
          "cex-cache hits=%.0f%%" % (
              100 * result.replay_overhead,
              100 * cache.get("constraint_cache_hit_rate", 0.0),
              100 * cache.get("cex_cache_hit_rate", 0.0)))
    if result.transfer_cost and result.transfer_cost.jobs:
        cost = result.transfer_cost
        print("         transfers: %d jobs in %d messages, %d trie nodes on "
              "the wire vs %d naive (%.0f%% saved)" % (
                  cost.jobs, cost.transfers, cost.encoded_nodes,
                  cost.naive_nodes, 100 * cost.savings_ratio))


def main() -> None:
    workers = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    # Any registered spec works the same way; `specs.available_specs()`
    # lists them all.  The spec reference is what lets worker processes
    # rebuild the program locally -- live tests do not pickle.
    test = specs.resolve_test("printf", format_length=2)
    limits = ExplorationLimits(max_rounds=100)

    print("workload: %s (spec %r)" % (test.name, test.spec_name))
    single = test.run(backend="single", limits=limits)
    describe("single", single)
    print()

    parallel = test.run(backend="process", workers=workers, limits=limits,
                        instructions_per_round=300)
    describe("process", parallel)
    print()

    assert parallel.covered_lines >= single.covered_lines, \
        "the merged frontier must not lose coverage"
    print("merged process coverage >= single-engine coverage: OK "
          "(%d lines each)" % len(parallel.covered_lines))
    if parallel.exhausted and single.exhausted:
        print("both runs exhausted the tree; paths: single=%d process=%d"
              % (single.paths_completed, parallel.paths_completed))


if __name__ == "__main__":
    main()
