#!/usr/bin/env python3
"""A tour of the symbolic POSIX environment model (paper §4).

The program below is a miniature multi-process pipeline that touches most of
the modeled environment in one run:

* the parent creates a System V shared-memory segment and ``fork()``s;
* the child ``mmap``s the shared "spool" file, copies a configuration value
  read from an environment variable into it, posts a message on a System V
  message queue and exits;
* the parent receives the message, waits for the child, checks the file
  contents the child flushed with ``msync``, and reports how much virtual
  time the whole exchange took.

One byte of the configuration value is symbolic, so the run explores the
branch structure of the parent's final check -- demonstrating that symbolic
data flows across processes, IPC objects, memory mappings and files.

Run with:  python examples/posix_model_tour.py
"""

from repro import lang as L
from repro.posix.api import add_concrete_file
from repro.posix.env import add_symbolic_env_var
from repro.testing import SymbolicTest

IPC_CREAT = 0x200
MAP_SHARED = 0x01
PROT_RW = 0x3


def build_program() -> L.Program:
    child = L.func(
        "child_work", ["qid"],
        # Map the spool file shared, copy the MODE env value into it.
        L.decl("fd", L.call("open", L.strconst("/spool"), 0)),
        L.decl("map", L.call("mmap", 0, 4, PROT_RW, MAP_SHARED, L.var("fd"), 0)),
        L.decl("mode", L.call("getenv", L.strconst("MODE"))),
        L.store(L.var("map"), 0, L.index(L.var("mode"), 0)),
        L.expr_stmt(L.call("msync", L.var("map"), 4, 0)),
        # Tell the parent we are done, then exit.
        L.expr_stmt(L.call("msgsnd", L.var("qid"), 1, L.strconst("ok"), 2, 0)),
        L.expr_stmt(L.call("exit", 0)),
        L.ret(0),
    )

    main = L.func(
        "main", [],
        L.decl("qid", L.call("msgget", 7, IPC_CREAT)),
        L.decl("shm", L.call("shmget", 9, 4, IPC_CREAT)),
        L.decl("counter", L.call("shmat", L.var("shm"))),
        L.store(L.var("counter"), 0, 1),
        L.decl("t0", L.call("time", 0)),
        L.decl("pid", L.call("fork")),
        L.if_(L.eq(L.var("pid"), 0), [
            L.expr_stmt(L.call("child_work", L.var("qid"))),
        ]),
        # Parent: wait for the child's message, then for the child itself.
        L.decl("buf", L.call("malloc", 4)),
        L.expr_stmt(L.call("msgrcv", L.var("qid"), L.var("buf"), 4, 0, 0)),
        L.expr_stmt(L.call("waitpid", L.var("pid"))),
        L.decl("t1", L.call("time", 0)),
        # Read back what the child flushed into the spool file.
        L.decl("fd", L.call("open", L.strconst("/spool"), 0)),
        L.decl("out", L.call("malloc", 1)),
        L.expr_stmt(L.call("read", L.var("fd"), L.var("out"), 1)),
        L.assert_(L.ge(L.var("t1"), L.var("t0")), "virtual clock went backwards"),
        L.assert_(L.eq(L.index(L.var("buf"), 0), ord("o")),
                  "unexpected message from the child"),
        # Branch on the (symbolic) configuration byte the child forwarded.
        L.if_(L.eq(L.index(L.var("out"), 0), ord("f")), [L.ret(1)]),
        L.if_(L.eq(L.index(L.var("out"), 0), ord("s")), [L.ret(2)]),
        L.ret(3),
    )
    return L.program("posix-tour", child, main)


def setup(state) -> None:
    add_concrete_file(state, "/spool", b"....")
    add_symbolic_env_var(state, "MODE", size=1, label="mode")


def main() -> None:
    test = SymbolicTest("posix-model-tour", build_program(), setup=setup)
    result = test.run()
    print("paths explored:  %d" % result.paths_completed)
    print("bugs found:      %d" % len(result.bugs))
    for case in sorted(result.test_cases, key=lambda c: (c.exit_code or 0)):
        print("  MODE=%-6r -> exit %s"
              % (case.input_bytes("mode"), case.exit_code))
    print()
    print("The same symbolic test, on a 3-worker cluster:")
    cluster = test.run(backend="cluster", workers=3, instructions_per_round=200)
    print("paths explored:  %d (rounds: %d, states transferred: %d)"
          % (cluster.paths_completed, cluster.rounds_executed,
             cluster.states_transferred))


if __name__ == "__main__":
    main()
