#!/usr/bin/env python3
"""Parallel symbolic execution: watching Cloud9 scale with cluster size.

Runs the same exhaustive symbolic test (the printf format-string workload of
Fig. 8 / Fig. 10) on clusters of increasing size and prints, per cluster
size, the virtual time (rounds) to exhaustion, the useful work done, the
replay overhead and the number of job transfers -- the quantities behind the
scalability figures of the paper.

Run with:  python examples/parallel_exploration.py
"""

from repro.api import Campaign
from repro.targets import printf


def main() -> None:
    worker_counts = [1, 2, 4, 8]
    instructions_per_round = 120

    print("workload: printf with a %d-byte symbolic format string" %
          printf.DEFAULT_FORMAT_LENGTH)
    print()
    print("%8s %10s %14s %14s %12s %12s" % (
        "workers", "rounds", "paths", "useful work", "replay work", "transfers"))

    # One test, a grid of cluster sizes: a Campaign runs the sweep and keeps
    # every per-size RunResult for comparison.
    campaign = Campaign("printf-scalability")
    campaign.add_grid(printf.make_symbolic_test(format_length=3), [
        {"backend": "cluster", "workers": workers,
         "instructions_per_round": instructions_per_round,
         "label": "w%d" % workers}
        for workers in worker_counts
    ])
    outcome = campaign.run()

    baseline_rounds = None
    for workers in worker_counts:
        result = outcome.results["w%d" % workers]
        if baseline_rounds is None:
            baseline_rounds = result.rounds_executed
        speedup = baseline_rounds / max(result.rounds_executed, 1)
        print("%8d %10d %14d %14d %12d %12d    (speed-up vs 1 worker: %.2fx)" % (
            workers, result.rounds_executed, result.paths_completed,
            result.useful_instructions, result.replay_instructions,
            result.states_transferred, speedup))

    print()
    print("Every cluster size explores the same set of paths (the dynamic")
    print("partitioning is complete and non-redundant); larger clusters finish")
    print("in fewer rounds of virtual time, at the cost of some replayed")
    print("instructions when jobs migrate between workers.")


if __name__ == "__main__":
    main()
