#!/usr/bin/env python3
"""Case study §7.3.4: proving lighttpd's fragmentation bug fix incomplete.

This example reproduces Table 6 of the paper: the same HTTP request is
delivered to three versions of the (modeled) lighttpd request parser under
three different read-fragmentation patterns, and then symbolic fragmentation
is used to let Cloud9 *search* for a crashing pattern -- which demonstrates
that the 1.4.13 fix is incomplete without having to guess the pattern.

Run with:  python examples/lighttpd_fragmentation.py
"""

from repro.engine import BugKind
from repro.targets import lighttpd


def verdict(version: int, pattern) -> str:
    result = lighttpd.make_fragmentation_test(version, pattern).run_single()
    crashed = any(b.kind in (BugKind.MEMORY_ERROR, BugKind.ASSERTION_FAILURE)
                  for b in result.bugs)
    return "crash + hang" if crashed else "OK"


def main() -> None:
    patterns = [
        ("1x28", lighttpd.PATTERN_WHOLE),
        ("1x26 + 1x2", lighttpd.PATTERN_SPLIT_TERMINATOR),
        ("2+5+1+5+2x1+3x2+5+2x1", lighttpd.PATTERN_MANY_SMALL),
    ]
    versions = [
        ("ver. 1.4.12 (pre-patch)", lighttpd.VERSION_1_4_12),
        ("ver. 1.4.13 (post-patch)", lighttpd.VERSION_1_4_13),
        ("fixed", lighttpd.VERSION_FIXED),
    ]

    print("=== Table 6: concrete fragmentation patterns ===")
    header = "%-28s" % "Fragmentation pattern"
    for label, _ in versions:
        header += " %-26s" % label
    print(header)
    for pattern_label, pattern in patterns:
        row = "%-28s" % pattern_label
        for _, version in versions:
            row += " %-26s" % verdict(version, pattern)
        print(row)

    print()
    print("=== symbolic fragmentation: let Cloud9 find the pattern ===")
    for label, version in versions:
        test = lighttpd.make_symbolic_fragmentation_test(
            version, bookkeeping_slots=3, frag_choice_limit=2)
        result = test.run_single(max_paths=400)
        crashes = [b for b in result.bugs if b.kind == BugKind.MEMORY_ERROR]
        if crashes:
            print("%-26s CRASH found after %d paths: %s"
                  % (label, result.paths_completed, crashes[0].message))
        else:
            print("%-26s no crash in %d explored paths"
                  % (label, result.paths_completed))
    print()
    print("Conclusion: the post-patch version still crashes for some "
          "fragmentation patterns -- the fix is incomplete, exactly as the "
          "paper reports.")


if __name__ == "__main__":
    main()
