#!/usr/bin/env python3
"""Case study §7.3.3: testing memcached with symbolic packets, fault
injection and hang detection.

Three symbolic-testing techniques from the paper, applied to the memcached
model:

1. *Symbolic packets*: a fully symbolic binary command explores every
   protocol path at once and its coverage is compared with the concrete test
   suite (the Table 5 accounting).
2. *Fault injection*: the concrete suite is replayed while every POSIX call
   is allowed to fail, ordered by the fewest-faults-first strategy.
3. *Symbolic UDP datagrams + instruction limit*: finds the infinite-loop hang
   in the UDP record scan and emits the reproducing datagram.

Run with:  python examples/memcached_symbolic_testing.py
"""

from repro.api import Campaign
from repro.engine import BugKind
from repro.targets import memcached
from repro.testing.report import CoverageAccounting


def main() -> None:
    print("=== 1. concrete suite vs symbolic packets (Table 5 accounting) ===")
    # Three testing techniques over the same target, batched in one campaign.
    campaign = Campaign("memcached-techniques")
    campaign.add(memcached.make_concrete_suite_test(), label="concrete")
    campaign.add(memcached.make_symbolic_packets_test(num_packets=1,
                                                      packet_size=6),
                 label="symbolic")
    campaign.add(memcached.make_fault_injection_test(), label="fault",
                 max_paths=150)
    outcome = campaign.run()
    concrete = outcome.results["concrete"]
    symbolic = outcome.results["symbolic"]
    fault = outcome.results["fault"]

    accounting = CoverageAccounting(line_count=concrete.line_count)
    accounting.add_method("entire test suite", concrete.paths_completed,
                          concrete.covered_lines, baseline=True)
    accounting.add_method("symbolic packets", symbolic.paths_completed,
                          symbolic.covered_lines)
    accounting.add_method("test suite + fault injection", fault.paths_completed,
                          fault.covered_lines)
    print(accounting.format_table())

    print()
    print("=== 2. fault injection details ===")
    print("paths explored with injected faults: %d" % fault.paths_completed)
    injected = [t for t in fault.test_cases if t.input_bytes("faults")]
    print("test cases that include at least one injected fault: %d" % len(injected))

    print()
    print("=== 3. hang detection on symbolic UDP datagrams ===")
    udp = memcached.make_udp_hang_test().run()
    hangs = [b for b in udp.bugs if b.kind == BugKind.INFINITE_LOOP]
    print("paths explored: %d, hangs detected: %d" % (udp.paths_completed, len(hangs)))
    for bug in hangs[:1]:
        print("  -", bug.summary())
        if bug.test_case is not None:
            print("    reproducing datagram:", bug.test_case.input_bytes("datagram0"))
    print()
    print("A zero record-size byte makes the datagram scan stop advancing;")
    print("the per-path instruction limit converts the hang into a bug report,")
    print("mirroring how the paper found memcached's UDP infinite loop.")


if __name__ == "__main__":
    main()
