"""Shared fixtures and helper programs for the test suite."""

from __future__ import annotations

import textwrap

import pytest

from repro import lang as L
from repro.engine import EngineConfig, SymbolicExecutor
from repro.posix import install_posix_model


def write_tree(root, files):
    """Materialize ``{relative/path.py: source}`` under ``root`` for the
    static-analysis tests; sources are dedented so fixtures can be written
    inline.  Returns ``root`` as a string."""
    for relative, source in files.items():
        path = root / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return str(root)


def branchy_program(buffer_size: int = 3) -> L.Program:
    """A small program with 3^buffer_size paths over a symbolic buffer."""
    return L.program(
        "branchy",
        L.func(
            "main", [],
            L.decl("buf", L.call("cloud9_symbolic_buffer", buffer_size,
                                 L.strconst("input"))),
            L.decl("i", 0),
            L.decl("acc", 0),
            L.while_(L.lt(L.var("i"), buffer_size),
                L.decl("c", L.index(L.var("buf"), L.var("i"))),
                L.if_(L.eq(L.var("c"), ord("A")),
                      [L.assign("acc", L.add(L.var("acc"), 1))],
                      [L.if_(L.eq(L.var("c"), ord("B")),
                             [L.assign("acc", L.add(L.var("acc"), 2))])]),
                L.assign("i", L.add(L.var("i"), 1)),
            ),
            L.ret(L.var("acc")),
        ),
    )


def single_branch_program() -> L.Program:
    """Two paths: the first symbolic byte is either '!' or not."""
    return L.program(
        "single_branch",
        L.func(
            "main", [],
            L.decl("buf", L.call("cloud9_symbolic_buffer", 1, L.strconst("input"))),
            L.if_(L.eq(L.index(L.var("buf"), 0), ord("!")), [L.ret(1)], [L.ret(0)]),
        ),
    )


def make_executor(program: L.Program, posix: bool = False,
                  config: EngineConfig = None) -> SymbolicExecutor:
    installers = [install_posix_model] if posix else []
    return SymbolicExecutor(program, config=config,
                            environment_installers=installers)


@pytest.fixture
def branchy():
    return branchy_program()


@pytest.fixture
def single_branch():
    return single_branch_program()
