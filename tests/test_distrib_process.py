"""Tests for repro.distrib: spec registry, worker protocol, process cluster."""

import multiprocessing

import pytest

from repro.api import Campaign, ExplorationLimits
from repro.cluster.jobs import JobTree
from repro.distrib import DistribWorker, ProcessClusterConfig, specs
from repro.distrib.cluster import ProcessCloud9Cluster, WorkerProcessError
from repro.distrib.messages import (
    ExploreCommand,
    ExportCommand,
    FinalizeCommand,
    ImportCommand,
    ReadyReply,
    SeedCommand,
    StatusReply,
    StopCommand,
)
from repro.testing.symbolic_test import SymbolicTest

from conftest import branchy_program

LIMITS = ExplorationLimits(max_rounds=300)


def _branchy_spec_test(buffer_size=2):
    return SymbolicTest(name="branchy-spec",
                        program=branchy_program(buffer_size),
                        use_posix_model=False)


# Registered at import time: "fork" children inherit it, which is what the
# process-backend tests below rely on.
specs.register_spec("test-branchy", _branchy_spec_test, replace=True)

fork_available = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(
    not fork_available,
    reason="runtime-registered specs reach child processes only under fork")


class TestSpecRegistry:
    def test_builtin_targets_are_registered(self):
        names = specs.available_specs()
        for expected in ("printf", "testcmd", "memcached-packets", "ghttpd",
                         "coreutils-echo", "lighttpd-frag-1.4.13"):
            assert expected in names

    def test_resolve_test_stamps_spec_reference(self):
        test = specs.resolve_test("printf", format_length=2)
        assert test.spec_name == "printf"
        assert test.spec_params == {"format_length": 2}
        assert test.name == "printf-symbolic-format"

    def test_unknown_spec_raises_with_suggestions(self):
        with pytest.raises(ValueError, match="unknown test spec"):
            specs.resolve_test("no-such-spec")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            specs.register_spec("test-branchy", _branchy_spec_test)

    def test_with_options_drops_spec_reference(self):
        test = specs.resolve_test("printf", format_length=2)
        derived = test.with_options(max_instructions=10)
        assert derived.spec_name is None


class TestDistribWorker:
    """The worker protocol driven in-process (no forking)."""

    def _worker(self, worker_id=1):
        return DistribWorker(worker_id, _branchy_spec_test())

    def test_seed_then_explore_to_exhaustion(self):
        worker = self._worker()
        status = worker.handle(SeedCommand())
        assert isinstance(status, StatusReply)
        assert status.queue_length == 1
        while status.queue_length:
            status = worker.handle(ExploreCommand(budget=1000))
        assert status.paths_completed == 9
        assert status.useful_instructions > 0
        assert status.coverage_bits > 0

    def test_export_import_round_trip_completes_the_tree(self):
        source = self._worker(1)
        status = source.handle(SeedCommand())
        while status.queue_length and status.queue_length < 3:
            status = source.handle(ExploreCommand(budget=5))
        assert status.queue_length >= 3, "need a frontier to export from"
        export = source.handle(ExportCommand(count=2))
        assert export.job_count == 2
        assert export.encoded_jobs is not None
        # The payload is the JobTree wire format, decodable stand-alone.
        assert len(JobTree.decode(export.encoded_jobs)) == 2

        destination = self._worker(2)
        imported = destination.handle(ImportCommand(encoded_jobs=export.encoded_jobs))
        assert imported.imported == 2

        for worker in (source, destination):
            while worker.handle(ExploreCommand(budget=1000)).queue_length:
                pass
        src_final = source.handle(FinalizeCommand())
        dst_final = destination.handle(FinalizeCommand())
        assert src_final.paths_completed + dst_final.paths_completed == 9
        assert dst_final.stats.replay_instructions > 0
        assert dst_final.stats.jobs_imported == 2
        assert src_final.stats.transfer_encoded_nodes > 0
        assert src_final.cache_counters["constraint_cache_misses"] > 0

    def test_bogus_job_is_reported_not_fatal(self):
        """A shipped path that cannot be replayed (divergence) must not kill
        the worker: the job is dropped, counted, and exploration continues."""
        worker = self._worker()
        worker.handle(SeedCommand())
        # Index 7 can never match a fork of the 2/3-way branchy program.
        bogus = JobTree.from_jobs([])
        bogus.insert((7, 7, 7))
        worker.handle(ImportCommand(encoded_jobs=bogus.encode()))
        status = worker.status()
        assert status.queue_length == 2  # root + the virtual bogus node
        while status.queue_length:
            status = worker.handle(ExploreCommand(budget=1000))
        assert status.broken_replays == 1
        assert status.paths_completed == 9  # the real work still finished

    def test_premature_termination_job_is_reported_not_fatal(self):
        worker = self._worker()
        worker.handle(SeedCommand())
        # Deeper than any real path: replay terminates with forks left over.
        bogus = JobTree.from_jobs([])
        bogus.insert((0,) * 40)
        worker.handle(ImportCommand(encoded_jobs=bogus.encode()))
        status = worker.status()
        while status.queue_length:
            status = worker.handle(ExploreCommand(budget=1000))
        assert status.broken_replays == 1
        assert status.paths_completed == 9


class TestWorkerMainOrphanExit:
    """worker_main's command wait is bounded: an orphaned worker (parent
    gone, no StopCommand ever coming) must return instead of blocking on
    queue.get() forever.  Driven in-process with plain queues and an
    injected liveness probe."""

    def _run_worker_main(self, parent_alive, preloaded_commands=()):
        import queue

        from repro.distrib import worker as worker_module

        command_queue: "queue.Queue[object]" = queue.Queue()
        reply_queue: "queue.Queue[object]" = queue.Queue()
        for command in preloaded_commands:
            command_queue.put(command)
        worker_module.worker_main(
            7, "test-branchy", {}, None, (), command_queue, reply_queue,
            parent_alive=parent_alive)
        return reply_queue

    def test_orphaned_worker_exits_after_one_poll(self, monkeypatch):
        from repro.distrib import worker as worker_module
        monkeypatch.setattr(worker_module, "COMMAND_POLL_INTERVAL", 0.05)
        replies = self._run_worker_main(parent_alive=lambda: False)
        assert isinstance(replies.get_nowait(), ReadyReply)
        assert replies.empty()  # returned without serving anything

    def test_live_parent_keeps_the_worker_serving(self, monkeypatch):
        from repro.distrib import worker as worker_module
        monkeypatch.setattr(worker_module, "COMMAND_POLL_INTERVAL", 0.05)
        polls = []

        def parent_alive():
            polls.append(True)
            return True

        replies = self._run_worker_main(
            parent_alive=parent_alive,
            preloaded_commands=(SeedCommand(), StopCommand()))
        assert isinstance(replies.get_nowait(), ReadyReply)
        assert isinstance(replies.get_nowait(), StatusReply)
        # StopCommand ended the loop; liveness may or may not have been
        # polled depending on timing, but it never caused an exit.


@needs_fork
class TestProcessCluster:
    def test_exhaustive_run_matches_single_engine(self):
        test = specs.resolve_test("test-branchy")
        single = test.run(backend="single", limits=LIMITS)
        assert single.exhausted

        result = test.run(backend="process", workers=2, limits=LIMITS,
                          instructions_per_round=50)
        assert result.backend == "process"
        assert result.exhausted
        assert result.num_workers == 2
        assert result.paths_completed == single.paths_completed
        assert result.covered_lines == single.covered_lines
        # Per-round timeline and per-worker stats come back across processes.
        assert result.rounds_executed and result.rounds_executed > 0
        assert len(result.timeline) == result.rounds_executed
        assert set(result.worker_stats) == {1, 2}
        assert result.cache_stats["constraint_cache_misses"] > 0

    def test_four_worker_coverage_at_least_single(self):
        """Acceptance criterion: 4-worker process coverage >= single-backend
        coverage under the same ExplorationLimits."""
        test = specs.resolve_test("printf", format_length=2)
        single = test.run(backend="single", limits=LIMITS)
        result = test.run(backend="process", workers=4, limits=LIMITS,
                          instructions_per_round=300)
        assert result.coverage_percent >= single.coverage_percent
        assert result.paths_completed == single.paths_completed

    def test_transfers_use_job_tree_encoding(self):
        test = specs.resolve_test("printf", format_length=2)
        result = test.run(backend="process", workers=2, limits=LIMITS,
                          instructions_per_round=300)
        assert result.states_transferred > 0
        cost = result.transfer_cost
        assert cost.jobs >= result.states_transferred
        assert 0 < cost.encoded_nodes <= cost.naive_nodes
        assert 0.0 <= cost.savings_ratio < 1.0
        # The receiving process replayed the shipped paths.
        assert result.replay_instructions > 0

    def test_max_rounds_budget_respected(self):
        test = specs.resolve_test("test-branchy", buffer_size=3)
        result = test.run(backend="process", workers=2,
                          limits=ExplorationLimits(max_rounds=2),
                          instructions_per_round=5)
        assert result.rounds_executed <= 2
        assert not result.exhausted

    def test_crashing_spec_surfaces_worker_traceback(self):
        config = ProcessClusterConfig(num_workers=1, reply_timeout=30.0)
        cluster = ProcessCloud9Cluster("test-crash", config=config, line_count=1)
        with pytest.raises(WorkerProcessError, match="boom"):
            cluster.run(limits=ExplorationLimits(max_rounds=1))


def _crashing_spec():
    raise RuntimeError("boom")


specs.register_spec("test-crash", _crashing_spec, replace=True)


class TestProcessRunnerValidation:
    def test_unshippable_test_is_rejected_helpfully(self):
        test = _branchy_spec_test()
        assert test.spec_name is None
        with pytest.raises(ValueError, match="resolve_test"):
            test.run(backend="process", workers=2)

    def test_explicit_spec_option_overrides(self):
        test = _branchy_spec_test()
        if not fork_available:
            pytest.skip("needs fork for runtime-registered specs")
        result = test.run(backend="process", workers=2, spec="test-branchy",
                          limits=LIMITS, instructions_per_round=50)
        assert result.exhausted
        assert result.paths_completed == 9

    def test_unknown_spec_fails_in_parent(self):
        test = _branchy_spec_test()
        with pytest.raises(ValueError, match="unknown test spec"):
            test.run(backend="process", workers=2, spec="no-such-spec")

    @needs_fork
    def test_spec_override_may_build_a_different_program(self):
        """Regression: an explicit spec= whose program differs from the local
        test's must resolve its own line count, not inherit the local one."""
        test = _branchy_spec_test()  # a different (much smaller) program
        result = test.run(backend="process", workers=2, spec="printf",
                          spec_params={"format_length": 2},
                          limits=LIMITS, instructions_per_round=300)
        assert result.exhausted
        assert result.paths_completed == 30  # printf's tree, not branchy's
        assert result.line_count > test.program.line_count


@needs_fork
class TestCampaignFanOut:
    def test_grid_fans_out_across_processes(self):
        test = specs.resolve_test("test-branchy")
        campaign = Campaign("fan-out", limits=LIMITS)
        campaign.add_grid(test, [
            {"backend": "single", "label": "single"},
            {"backend": "cluster", "workers": 2, "label": "cluster",
             "instructions_per_round": 50},
        ])
        entries = list(campaign)
        assert all(entry.shippable for entry in entries)
        outcome = campaign.run(processes=2)
        assert set(outcome.results) == {"single", "cluster"}
        paths = {label: r.paths_completed for label, r in outcome.results.items()}
        assert paths["single"] == paths["cluster"] == 9
        assert outcome.combined_coverage_percent(test.name) > 0

    def test_unshippable_entries_run_locally(self):
        campaign = Campaign("mixed", limits=LIMITS)
        campaign.add(_branchy_spec_test(), backend="single", label="local")
        assert not campaign.entries[0].shippable
        outcome = campaign.run(processes=2)
        assert outcome.results["local"].paths_completed == 9

    def test_pool_honors_mutated_test_fields(self):
        """Regression: picklable tweaks made after resolve_test (here the
        per-path instruction cap) must reach the pool worker, not be silently
        reset to the spec factory's defaults."""
        test = specs.resolve_test("test-branchy")
        test.engine_config.max_instructions_per_path = 5
        campaign = Campaign("mutated", limits=LIMITS)
        campaign.add(test, backend="single", label="capped")
        outcome = campaign.run(processes=2)
        # branchy(2) normally completes 9 clean paths; the 5-instruction cap
        # trips the infinite-loop detector instead.
        result = outcome.results["capped"]
        assert result.paths_completed < 9
        assert result.found_bug
