"""Unit tests for the single-node exploration driver and its limits."""

from repro import lang as L
from repro.engine import SymbolicExecutor
from repro.engine.strategies import make_strategy

from conftest import branchy_program, make_executor


class TestRunLimits:
    def test_exhaustive_run(self):
        executor = make_executor(branchy_program(2))
        result = executor.run()
        assert result.exhausted
        assert result.paths_completed == 9
        assert result.states_remaining == 0

    def test_max_paths_limit(self):
        executor = make_executor(branchy_program(3))
        result = executor.run(max_paths=5)
        assert result.paths_completed >= 5
        assert not result.exhausted

    def test_max_steps_limit(self):
        executor = make_executor(branchy_program(3))
        result = executor.run(max_steps=10)
        assert result.steps == 10

    def test_max_instructions_limit(self):
        executor = make_executor(branchy_program(3))
        result = executor.run(max_instructions=50)
        assert result.instructions_executed >= 50
        assert not result.exhausted

    def test_coverage_target_stops_early(self):
        executor = make_executor(branchy_program(3))
        result = executor.run(coverage_target=50.0)
        assert result.coverage_percent >= 50.0

    def test_coverage_percent_bounded(self):
        executor = make_executor(branchy_program(2))
        result = executor.run()
        assert 0.0 < result.coverage_percent <= 100.0
        assert result.covered_lines <= set(range(result.line_count))

    def test_counters_accumulate_across_runs(self):
        executor = make_executor(branchy_program(1))
        first = executor.run()
        second_executor = make_executor(branchy_program(1))
        second = second_executor.run()
        assert first.paths_completed == second.paths_completed == 3

    def test_wall_time_recorded(self):
        executor = make_executor(branchy_program(1))
        result = executor.run()
        assert result.wall_time >= 0.0


class TestStrategies:
    def _run_with(self, name):
        executor = make_executor(branchy_program(2))
        result = executor.run(strategy=name)
        return result

    def test_all_strategies_reach_exhaustion(self):
        for name in ("dfs", "bfs", "random_state", "random_path",
                     "coverage_optimized", "interleaved"):
            result = self._run_with(name)
            assert result.exhausted, name
            assert result.paths_completed == 9, name

    def test_strategy_objects_accepted(self):
        executor = make_executor(branchy_program(1))
        strategy = make_strategy("dfs")
        result = executor.run(strategy=strategy)
        assert result.exhausted

    def test_unknown_strategy_rejected(self):
        try:
            make_strategy("definitely-not-a-strategy")
            assert False
        except ValueError:
            pass


class TestStepResults:
    def test_step_result_children_order_deterministic(self):
        program = branchy_program(1)
        runs = []
        for _ in range(2):
            executor = make_executor(program)
            state = executor.make_initial_state()
            trace = []
            frontier = [state]
            for _step in range(200):
                if not frontier:
                    break
                current = frontier.pop(0)
                result = executor.step(current)
                trace.append(len(result.children))
                frontier.extend(result.running)
            runs.append(trace)
        assert runs[0] == runs[1]

    def test_step_on_terminated_state_is_noop(self):
        executor = make_executor(branchy_program(1))
        state = executor.make_initial_state()
        state.terminate(0)
        result = executor.step(state)
        assert result.children == []

    def test_initial_state_options_passed_through(self):
        executor = make_executor(branchy_program(1))
        state = executor.make_initial_state(options={"max_instructions": 123})
        assert state.options["max_instructions"] == 123
