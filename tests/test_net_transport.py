"""The socket transport in isolation (no cluster, no forked workers).

Covers the wire format (length-prefixed frames: partial reads, coalesced
frames, zero-length heartbeat pings, oversize and corrupt payloads), the
heartbeat liveness logic on a frozen clock, the :class:`TcpTransport`
send/recv/liveness surface over a socketpair, and the coordinator-side
handshake (version check, pending pool, admission).
"""

import socket
import struct
import threading
import time

import pytest

from repro.net.framing import (
    DEFAULT_MAX_FRAME_SIZE,
    PING_FRAME,
    FrameCorruptError,
    FrameDecoder,
    FrameTooLarge,
    decode_message,
    encode_frame,
    encode_message,
)
from repro.net.heartbeat import HeartbeatMonitor, HeartbeatSender
from repro.net.server import AgentServer, NoPendingAgent
from repro.net.transport import (
    PROTOCOL_VERSION,
    HelloMessage,
    ReceiveTimeout,
    RejectMessage,
    TcpTransport,
    TransportClosed,
    TransportError,
    WelcomeMessage,
    parse_address,
)


class _Clock:
    """A hand-cranked monotonic clock for deterministic liveness tests."""

    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def _wait_until(predicate, timeout=5.0, what="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError("timed out waiting for %s" % what)


# -- framing -----------------------------------------------------------------------------


class TestFraming:
    def test_message_round_trip(self):
        message = {"cmd": "explore", "budget": 40}
        payloads = FrameDecoder().feed(encode_message(message))
        assert len(payloads) == 1
        assert decode_message(payloads[0]) == message

    def test_coalesced_frames_split_apart(self):
        messages = ["one", {"two": 2}, ("three", 3)]
        wire = b"".join(encode_message(m) for m in messages)
        payloads = FrameDecoder().feed(wire)  # one chunk, three frames
        assert [decode_message(p) for p in payloads] == messages

    def test_partial_reads_reassemble_byte_by_byte(self):
        message = {"payload": list(range(50))}
        wire = encode_message(message)
        decoder = FrameDecoder()
        payloads = []
        for i in range(len(wire)):  # worst-case fragmentation
            payloads.extend(decoder.feed(wire[i:i + 1]))
        assert len(payloads) == 1
        assert decode_message(payloads[0]) == message
        assert decoder.buffered_bytes == 0

    def test_buffered_bytes_tracks_incomplete_frames(self):
        wire = encode_message("hello")
        decoder = FrameDecoder()
        assert decoder.feed(wire[:3]) == []
        assert decoder.buffered_bytes == 3
        assert decoder.feed(wire[3:-1]) == []
        assert decoder.feed(wire[-1:]) != []
        assert decoder.buffered_bytes == 0

    def test_zero_length_payload_is_the_ping_frame(self):
        assert encode_frame(b"") == PING_FRAME
        decoder = FrameDecoder()
        # A ping sandwiched between real frames comes out as b"".
        wire = encode_message("a") + PING_FRAME + encode_message("b")
        payloads = decoder.feed(wire)
        assert payloads[1] == b""
        assert decode_message(payloads[0]) == "a"
        assert decode_message(payloads[2]) == "b"

    def test_encode_rejects_oversized_payloads(self):
        with pytest.raises(FrameTooLarge, match="refusing to send"):
            encode_frame(b"x" * 2048, max_frame_size=1024)
        with pytest.raises(FrameTooLarge):
            encode_message("y" * 2048, max_frame_size=1024)

    def test_decoder_rejects_oversized_declarations_before_allocating(self):
        header = struct.pack(">I", 1 << 30)  # declares a 1 GiB payload
        with pytest.raises(FrameTooLarge, match="peer declared"):
            FrameDecoder(max_frame_size=1024).feed(header)

    def test_corrupt_payload_raises_with_size(self):
        with pytest.raises(FrameCorruptError, match="corrupt frame"):
            decode_message(b"\x00not a pickle at all")

    def test_unpicklable_message_raises_on_encode(self):
        with pytest.raises(FrameCorruptError, match="does not pickle"):
            encode_message(lambda: None)


class TestParseAddress:
    def test_host_port(self):
        assert parse_address("10.0.0.5:4850") == ("10.0.0.5", 4850)

    def test_bare_port_defaults_to_loopback(self):
        assert parse_address("4850") == ("127.0.0.1", 4850)

    def test_bad_port_rejected(self):
        with pytest.raises(ValueError, match="bad address"):
            parse_address("host:notaport")
        with pytest.raises(ValueError, match="bad port"):
            parse_address("host:70000")


# -- heartbeat liveness on a frozen clock ------------------------------------------------


class TestHeartbeatMonitor:
    def test_fresh_monitor_is_alive(self):
        monitor = HeartbeatMonitor(interval=0.5, miss_threshold=4,
                                   clock=_Clock())
        assert monitor.is_alive()
        assert monitor.misses() == 0

    def test_silence_accumulates_misses(self):
        clock = _Clock()
        monitor = HeartbeatMonitor(interval=0.5, miss_threshold=4, clock=clock)
        clock.advance(1.7)  # 3 whole intervals of silence
        assert monitor.misses() == 3
        assert monitor.is_alive()  # one miss short of the threshold
        clock.advance(0.5)
        assert monitor.misses() == 4
        assert not monitor.is_alive()

    def test_beat_resets_the_silence_window(self):
        clock = _Clock()
        monitor = HeartbeatMonitor(interval=0.5, miss_threshold=4, clock=clock)
        clock.advance(1.9)
        monitor.beat()
        assert monitor.silence() == 0.0
        clock.advance(1.9)  # still under 4 x 0.5s since the beat
        assert monitor.is_alive()

    def test_describe_miss_names_the_numbers(self):
        clock = _Clock()
        monitor = HeartbeatMonitor(interval=0.5, miss_threshold=2, clock=clock)
        clock.advance(3.0)
        text = monitor.describe_miss()
        assert "missed 6 heartbeats" in text
        assert "threshold 2" in text

    def test_validation(self):
        with pytest.raises(ValueError, match="interval"):
            HeartbeatMonitor(interval=0.0)
        with pytest.raises(ValueError, match="miss_threshold"):
            HeartbeatMonitor(miss_threshold=0)


class TestHeartbeatSender:
    def test_pings_flow_until_stopped(self):
        pings = []
        sender = HeartbeatSender(lambda: pings.append(1), interval=0.01)
        sender.start()
        _wait_until(lambda: len(pings) >= 3, what="three pings")
        sender.stop()
        settled = len(pings)
        time.sleep(0.05)
        assert len(pings) <= settled + 1  # stopped means stopped

    def test_failing_send_ends_the_thread(self):
        def boom():
            raise OSError("connection gone")

        sender = HeartbeatSender(boom, interval=0.01)
        sender.start()
        _wait_until(lambda: not sender._thread.is_alive(),
                    what="sender thread exit")


# -- TcpTransport over a socketpair ------------------------------------------------------


def _transport_pair(max_frame_size=DEFAULT_MAX_FRAME_SIZE,
                    heartbeat_a=None, heartbeat_b=None):
    """Two connected transports, receivers running, like a live channel."""
    sock_a, sock_b = socket.socketpair()
    a = TcpTransport(sock_a, peer="peer-b", max_frame_size=max_frame_size,
                     heartbeat=heartbeat_a).start_receiver()
    b = TcpTransport(sock_b, peer="peer-a", max_frame_size=max_frame_size,
                     heartbeat=heartbeat_b).start_receiver()
    return a, b


def _transport_and_raw(max_frame_size=DEFAULT_MAX_FRAME_SIZE):
    """One transport plus the raw far-end socket, for wire-level mischief."""
    sock_a, sock_raw = socket.socketpair()
    transport = TcpTransport(sock_a, peer="agent 10.0.0.9:4850",
                             max_frame_size=max_frame_size).start_receiver()
    return transport, sock_raw


class TestTcpTransport:
    def test_send_recv_round_trip_both_directions(self):
        a, b = _transport_pair()
        try:
            a.send({"seq": 1})
            b.send({"seq": 2})
            assert b.recv(timeout=5.0) == {"seq": 1}
            assert a.recv(timeout=5.0) == {"seq": 2}
        finally:
            a.close(timeout=0)
            b.close(timeout=0)

    def test_recv_times_out_when_idle(self):
        a, b = _transport_pair()
        try:
            with pytest.raises(ReceiveTimeout):
                a.recv(timeout=0.05)
        finally:
            a.close(timeout=0)
            b.close(timeout=0)

    def test_pings_feed_the_heartbeat_but_not_the_inbox(self):
        clock = _Clock()
        monitor = HeartbeatMonitor(interval=0.5, miss_threshold=4, clock=clock)
        a, b = _transport_pair(heartbeat_a=monitor)
        try:
            clock.advance(1.9)  # nearly dead...
            b.send_ping()
            _wait_until(lambda: monitor.silence() == 0.0, what="ping to land")
            assert a.is_alive()  # ...revived by the ping
            b.send("real message")
            assert a.recv(timeout=5.0) == "real message"  # ping not queued
        finally:
            a.close(timeout=0)
            b.close(timeout=0)

    def test_heartbeat_miss_kills_liveness_with_frozen_clock(self):
        clock = _Clock()
        monitor = HeartbeatMonitor(interval=0.5, miss_threshold=4, clock=clock)
        a, b = _transport_pair(heartbeat_a=monitor)
        try:
            assert a.is_alive()
            clock.advance(2.0)  # 4 intervals of silence = the threshold
            assert not a.is_alive()
            assert a.heartbeat_missed
            assert "missed" in a.liveness_error()
        finally:
            a.close(timeout=0)
            b.close(timeout=0)

    def test_peer_eof_raises_transport_closed(self):
        a, b = _transport_pair()
        b.close(timeout=0)
        try:
            with pytest.raises(TransportClosed, match="peer-b"):
                a.recv(timeout=5.0)
            assert not a.is_alive()
        finally:
            a.close(timeout=0)

    def test_inbox_drains_before_reporting_the_death(self):
        a, b = _transport_pair()
        b.send("parting gift 1")
        b.send("parting gift 2")
        # Wait for delivery before hanging up, then the inbox must still
        # serve both messages ahead of the closure error.
        _wait_until(lambda: a._inbox.qsize() == 2, what="delivery")
        b.close(timeout=0)
        try:
            assert a.recv(timeout=5.0) == "parting gift 1"
            assert a.recv(timeout=5.0) == "parting gift 2"
            with pytest.raises(TransportClosed):
                a.recv(timeout=5.0)
        finally:
            a.close(timeout=0)

    def test_oversized_frame_fails_this_peer_by_name(self):
        transport, raw = _transport_and_raw(max_frame_size=1024)
        try:
            raw.sendall(struct.pack(">I", 1 << 20))  # declares 1 MiB
            with pytest.raises(TransportError,
                               match="bad frame from agent 10.0.0.9:4850"):
                transport.recv(timeout=5.0)
            assert not transport.is_alive()
            assert "bad frame" in transport.liveness_error()
        finally:
            transport.close(timeout=0)
            raw.close()

    def test_corrupt_frame_fails_this_peer_by_name(self):
        transport, raw = _transport_and_raw()
        try:
            raw.sendall(encode_frame(b"\x00these bytes do not unpickle"))
            with pytest.raises(TransportError,
                               match="bad frame from agent 10.0.0.9:4850"):
                transport.recv(timeout=5.0)
        finally:
            transport.close(timeout=0)
            raw.close()

    def test_oversize_send_is_refused_locally(self):
        a, b = _transport_pair(max_frame_size=1024)
        try:
            with pytest.raises(TransportError, match="cannot send to peer-b"):
                a.send("x" * 4096)
        finally:
            a.close(timeout=0)
            b.close(timeout=0)

    def test_send_after_close_raises(self):
        a, b = _transport_pair()
        a.close(timeout=0)
        b.close(timeout=0)
        with pytest.raises(TransportClosed, match="already closed"):
            a.send("too late")

    def test_send_to_stalled_peer_fails_within_the_deadline(self):
        """Regression: a peer that stops *reading* must not wedge the sender.

        sock.sendall() under _send_lock blocks forever once the kernel
        buffers fill; the bounded send must give up after send_timeout and
        declare the peer dead instead.
        """
        sock_a, sock_stalled = socket.socketpair()
        # Tiny buffers so a few frames fill the pipe; the far end never reads.
        for sock in (sock_a, sock_stalled):
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, 4096)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 4096)
        transport = TcpTransport(sock_a, peer="stalled-agent",
                                 send_timeout=0.3)
        try:
            start = time.monotonic()
            with pytest.raises(TransportClosed, match="stalled"):
                for _ in range(1000):
                    transport.send("x" * 8192)
            assert time.monotonic() - start < 5.0
        finally:
            transport.close(timeout=0)
            sock_stalled.close()

    def test_multi_chunk_send_completes_when_the_peer_reads(self):
        """The select-loop send must reassemble into identical frames even
        when one payload spans many partial send() calls."""
        sock_a, sock_b = socket.socketpair()
        for sock in (sock_a, sock_b):
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, 4096)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 4096)
        a = TcpTransport(sock_a, peer="peer-b")
        b = TcpTransport(sock_b, peer="peer-a").start_receiver()
        payload = "y" * (1 << 20)  # 1 MiB >> the 4 KiB socket buffers
        try:
            sender = threading.Thread(target=a.send, args=(payload,))
            sender.start()
            assert b.recv(timeout=10.0) == payload
            sender.join(timeout=10.0)
            assert not sender.is_alive()
        finally:
            a.close(timeout=0)
            b.close(timeout=0)


# -- coordinator-side fault containment --------------------------------------------------


class TestFaultContainment:
    def test_corrupt_frame_becomes_one_workers_failure(self):
        """The cluster receive loop turns a wire fault into a _WorkerFailure
        for that handle -- the per-peer error the ledger recovery consumes --
        instead of an exception that would abort the whole run."""
        from repro.distrib.cluster import (
            ProcessCloud9Cluster,
            ProcessClusterConfig,
            _WorkerFailure,
            _WorkerHandle,
        )

        cluster = ProcessCloud9Cluster(
            "printf", spec_params={"format_length": 2},
            config=ProcessClusterConfig(num_workers=2, reply_timeout=0.5))
        transport, raw = _transport_and_raw()
        handle = _WorkerHandle(worker_id=9, transport=transport)
        try:
            raw.sendall(encode_frame(b"garbage that will not unpickle"))
            with pytest.raises(_WorkerFailure) as excinfo:
                cluster._receive(handle)
            assert excinfo.value.handle is handle
            assert "bad frame from agent 10.0.0.9:4850" in excinfo.value.reason
        finally:
            transport.close(timeout=0)
            raw.close()


# -- the handshake -----------------------------------------------------------------------


def _server(**kw):
    kw.setdefault("spec_params", {"format_length": 2})
    kw.setdefault("handshake_timeout", 2.0)
    return AgentServer("printf", **kw)


def _dial(server, max_frame_size=DEFAULT_MAX_FRAME_SIZE):
    host, port = server.address
    sock = socket.create_connection((host, port), timeout=5.0)
    sock.settimeout(None)
    return TcpTransport(sock, peer="coordinator",
                        max_frame_size=max_frame_size).start_receiver()


class TestHandshake:
    def test_hello_parks_and_admit_welcomes(self):
        server = _server()
        client = None
        admitted = None
        try:
            client = _dial(server)
            client.send(HelloMessage(protocol_version=PROTOCOL_VERSION,
                                     agent="testhost:1234"))
            _wait_until(lambda: server.pending_count == 1, what="parking")
            admitted = server.admit(worker_id=7, timeout=5.0)
            assert "testhost:1234" in admitted.peer
            welcome = client.recv(timeout=5.0)
            assert isinstance(welcome, WelcomeMessage)
            assert welcome.worker_id == 7
            assert welcome.spec_name == "printf"
            assert welcome.spec_params == {"format_length": 2}
            assert welcome.protocol_version == PROTOCOL_VERSION
            assert welcome.heartbeat_interval == server.heartbeat_interval
            # Admission armed a live channel: commands flow both ways.
            admitted.send({"cmd": "explore"})
            assert client.recv(timeout=5.0) == {"cmd": "explore"}
            client.send({"reply": "status"})
            assert admitted.recv(timeout=5.0) == {"reply": "status"}
            assert server.agents_admitted == 1
            assert server.pending_count == 0
        finally:
            if admitted is not None:
                admitted.close(timeout=0)
            if client is not None:
                client.close(timeout=0)
            server.close()

    def test_version_mismatch_is_rejected_with_reason(self):
        server = _server()
        client = None
        try:
            client = _dial(server)
            client.send(HelloMessage(protocol_version=PROTOCOL_VERSION + 1))
            reply = client.recv(timeout=5.0)
            assert isinstance(reply, RejectMessage)
            assert "version mismatch" in reply.reason
            assert str(PROTOCOL_VERSION) in reply.reason
            _wait_until(lambda: server.handshakes_rejected == 1,
                        what="rejection count")
            assert server.pending_count == 0
        finally:
            if client is not None:
                client.close(timeout=0)
            server.close()

    def test_garbage_hello_is_dropped_and_server_survives(self):
        server = _server()
        client = None
        try:
            raw = socket.create_connection(server.address, timeout=5.0)
            raw.sendall(encode_frame(b"not a hello at all"))
            _wait_until(lambda: server.handshakes_rejected == 1,
                        what="garbage rejection")
            raw.close()
            # The acceptor is still alive: a well-behaved agent parks fine.
            client = _dial(server)
            client.send(HelloMessage(protocol_version=PROTOCOL_VERSION))
            _wait_until(lambda: server.pending_count == 1,
                        what="post-garbage parking")
        finally:
            if client is not None:
                client.close(timeout=0)
            server.close()

    def test_admit_without_agents_names_the_dial_command(self):
        server = _server()
        try:
            with pytest.raises(NoPendingAgent,
                               match="python -m repro.net.agent"):
                server.admit(worker_id=1, timeout=0.2)
        finally:
            server.close()

    def test_close_drops_pending_connections(self):
        server = _server()
        client = _dial(server)
        try:
            client.send(HelloMessage(protocol_version=PROTOCOL_VERSION))
            _wait_until(lambda: server.pending_count == 1, what="parking")
            server.close()
            # The parked channel was hung up on: the client sees EOF.
            with pytest.raises(TransportError):
                client.recv(timeout=5.0)
        finally:
            client.close(timeout=0)
            server.close()
