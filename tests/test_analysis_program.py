"""The whole-program index (repro.analysis.program) and cross-module CONC003."""

import ast

from repro.analysis import cli
from repro.analysis.core import load_modules
from repro.analysis.program import ProjectIndex, annotation_class

from conftest import write_tree


def _index(tmp_path, files):
    root = write_tree(tmp_path, files)
    modules, errors = load_modules([root])
    assert errors == []
    return ProjectIndex(modules)


def _args(tmp_path, *extra):
    return [*extra, "--baseline", str(tmp_path / "analysis_baseline.json"),
            "--lock", str(tmp_path / "protocol.lock.json")]


def _function(index, qualname):
    (info,) = [f for f in index.functions.values() if f.qualname == qualname]
    return info


def _call_keys(index, qualname):
    """Every callee key the index resolves for calls inside ``qualname``."""
    info = _function(index, qualname)
    keys = []
    for node in ast.walk(info.node):
        if isinstance(node, ast.Call):
            keys.extend(index.callees(info.module, info.qualname,
                                      info.node, node.func))
    return keys


class TestModuleNaming:
    def test_src_layout_fallback(self, tmp_path):
        index = _index(tmp_path, {"src/repro/net/transport.py": "X = 1\n"})
        assert "repro.net.transport" in index.by_name

    def test_package_markers_win_over_no_src(self, tmp_path):
        index = _index(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/sub/__init__.py": "",
            "pkg/sub/mod.py": "X = 1\n",
        })
        assert "pkg.sub.mod" in index.by_name
        assert "pkg.sub" in index.by_name  # the __init__.py itself


class TestResolution:
    FILES = {
        "src/repro/net/transport.py": """\
            class TcpTransport:
                def send(self, message):
                    return message
        """,
        "src/repro/distrib/cluster.py": """\
            from repro.net.transport import TcpTransport as Chan

            class Coordinator:
                def __init__(self, transport: Chan):
                    self._transport = transport

                def push(self):
                    self._transport.send("x")

            def helper():
                chan = Chan()
                chan.send("y")
        """,
    }

    def test_import_alias_resolves_to_defining_module(self, tmp_path):
        index = _index(tmp_path, self.FILES)
        module = index.by_name["repro.distrib.cluster"]
        assert index.resolve(module, "Chan") \
            == "repro.net.transport.TcpTransport"

    def test_attr_type_inferred_from_annotated_ctor_param(self, tmp_path):
        index = _index(tmp_path, self.FILES)
        info = index.classes["repro.distrib.cluster.Coordinator"]
        assert info.attr_types["_transport"] \
            == "repro.net.transport.TcpTransport"

    def test_typed_attribute_call_crosses_modules(self, tmp_path):
        index = _index(tmp_path, self.FILES)
        keys = _call_keys(index, "Coordinator.push")
        assert any(key.endswith("::TcpTransport.send") for key in keys)

    def test_constructed_local_call_crosses_modules(self, tmp_path):
        index = _index(tmp_path, self.FILES)
        keys = _call_keys(index, "helper")
        assert any(key.endswith("::TcpTransport.send") for key in keys)

    def test_annotation_class_unwraps_optional_and_strings(self):
        ann = ast.parse("Optional[TcpTransport]", mode="eval").body
        assert annotation_class(ann) == "TcpTransport"
        ann = ast.parse("'TcpTransport'", mode="eval").body
        assert annotation_class(ann) == "TcpTransport"


class TestAbstractHookDispatch:
    FILES = {
        "src/repro/cluster/core.py": """\
            class Core:
                def run(self):
                    return self._phase()

                def _phase(self):
                    raise NotImplementedError
        """,
        "src/repro/cluster/backend.py": """\
            from repro.cluster.core import Core

            class Backend(Core):
                def _phase(self):
                    return 1
        """,
    }

    def test_abstract_call_expands_to_in_tree_overrides(self, tmp_path):
        index = _index(tmp_path, self.FILES)
        keys = _call_keys(index, "Core.run")
        assert any(key.endswith("::Core._phase") for key in keys)
        assert any(key.endswith("::Backend._phase") for key in keys)


class TestCrossModuleLockCycle:
    """The tentpole scenario: a coordinator->transport lock inversion where
    each half of the cycle lives in a different module."""

    FILES = {
        "src/repro/cluster/core.py": """\
            import threading

            from repro.cluster.channel import Transport

            class Coordinator:
                def __init__(self, transport: Transport):
                    self._round_lock = threading.Lock()
                    self._transport = transport

                def dispatch(self):
                    with self._round_lock:
                        self._transport.send()

                def close_round(self):
                    with self._round_lock:
                        return None
        """,
        "src/repro/cluster/channel.py": """\
            import threading

            from repro.cluster.core import Coordinator

            class Transport:
                def __init__(self):
                    self._send_lock = threading.Lock()

                def send(self):
                    with self._send_lock:
                        return True

                def flush(self, owner: Coordinator):
                    with self._send_lock:
                        owner.close_round()
        """,
    }

    def test_inversion_across_modules_is_a_finding(self, tmp_path, capsys):
        root = write_tree(tmp_path, self.FILES)
        assert cli.main(_args(tmp_path, root, "--select", "CONC")) == 1
        out = capsys.readouterr().out
        assert "[CONC003]" in out
        assert "_round_lock" in out and "_send_lock" in out

    def test_consistent_order_is_green(self, tmp_path):
        consistent = dict(self.FILES)
        consistent["src/repro/cluster/channel.py"] = (
            self.FILES["src/repro/cluster/channel.py"].replace(
                "owner.close_round()", "return None"))
        root = write_tree(tmp_path, consistent)
        assert cli.main(_args(tmp_path, root, "--select", "CONC")) == 0
