"""Unit tests for the coverage bit vector (the §3.3 overlay data structure)."""

import pytest

from hypothesis import given, settings, strategies as st

from repro.engine.coverage import CoverageBitVector


def test_set_and_get():
    vector = CoverageBitVector(10)
    vector.set(3)
    assert vector.get(3)
    assert not vector.get(4)


def test_out_of_range_ignored():
    vector = CoverageBitVector(10)
    vector.set(99)
    assert vector.count() == 0
    assert not vector.get(99)


def test_count_and_percent():
    vector = CoverageBitVector.from_lines(10, [0, 1, 2])
    assert vector.count() == 3
    assert vector.percent() == 30.0


def test_empty_vector_percent():
    assert CoverageBitVector(0).percent() == 0.0


def test_or_with_merges():
    a = CoverageBitVector.from_lines(10, [1, 2])
    b = CoverageBitVector.from_lines(10, [2, 3])
    a.or_with(b)
    assert a.covered_lines() == {1, 2, 3}


def test_or_with_size_mismatch():
    with pytest.raises(ValueError):
        CoverageBitVector(4).or_with(CoverageBitVector(8))


def test_union_and_difference():
    a = CoverageBitVector.from_lines(10, [1, 2])
    b = CoverageBitVector.from_lines(10, [2, 3])
    assert a.union(b).covered_lines() == {1, 2, 3}
    assert a.difference(b).covered_lines() == {1}


def test_as_int_roundtrip():
    a = CoverageBitVector.from_lines(16, [0, 5, 15])
    b = CoverageBitVector(16, a.as_int())
    assert a == b


def test_iteration_and_len():
    vector = CoverageBitVector.from_lines(4, [1, 3])
    assert list(vector) == [False, True, False, True]
    assert len(vector) == 4


def test_copy_is_independent():
    a = CoverageBitVector.from_lines(8, [1])
    b = a.copy()
    b.set(2)
    assert not a.get(2)


def test_negative_size_rejected():
    with pytest.raises(ValueError):
        CoverageBitVector(-1)


@settings(max_examples=100, deadline=None)
@given(lines_a=st.sets(st.integers(min_value=0, max_value=63)),
       lines_b=st.sets(st.integers(min_value=0, max_value=63)))
def test_or_matches_set_union_property(lines_a, lines_b):
    """ORing coverage vectors is exactly set union over covered lines."""
    a = CoverageBitVector.from_lines(64, lines_a)
    b = CoverageBitVector.from_lines(64, lines_b)
    assert a.union(b).covered_lines() == lines_a | lines_b
    a.or_with(b)
    assert a.covered_lines() == lines_a | lines_b
    # ORing is idempotent and monotone.
    before = a.count()
    a.or_with(b)
    assert a.count() == before
