"""Unit tests for the mmap and System V IPC components of the POSIX model."""

from repro import lang as L
from repro.posix.api import add_concrete_file
from repro.posix.data import posix_of
from repro.testing import SymbolicTest

MAP_SHARED = 0x01
MAP_PRIVATE = 0x02
MAP_ANONYMOUS = 0x20
PROT_RW = 0x3
IPC_CREAT = 0x200
IPC_EXCL = 0x400
IPC_NOWAIT = 0x800
MAP_FAILED = 0xFFFFFFFF
ERR = 0xFFFFFFFF


def run_program(*main_body, functions=(), setup=None, options=None):
    program = L.program("p", *functions, L.func("main", [], *main_body))
    test = SymbolicTest("t", program, setup=setup, options=options or {})
    return test.run_single()


class TestMmapAnonymous:
    def test_private_mapping_read_write(self):
        result = run_program(
            L.decl("p", L.call("mmap", 0, 8, PROT_RW,
                               MAP_PRIVATE | MAP_ANONYMOUS, ERR, 0)),
            L.store(L.var("p"), 3, 0x5A),
            L.ret(L.index(L.var("p"), 3)),
        )
        assert result.test_cases[0].exit_code == 0x5A

    def test_zero_length_mapping_fails(self):
        result = run_program(
            L.ret(L.eq(L.call("mmap", 0, 0, PROT_RW,
                              MAP_PRIVATE | MAP_ANONYMOUS, ERR, 0), MAP_FAILED)),
        )
        assert result.test_cases[0].exit_code == 1

    def test_munmap_private_mapping(self):
        result = run_program(
            L.decl("p", L.call("mmap", 0, 8, PROT_RW,
                               MAP_PRIVATE | MAP_ANONYMOUS, ERR, 0)),
            L.ret(L.call("munmap", L.var("p"), 8)),
        )
        assert result.test_cases[0].exit_code == 0

    def test_munmap_unknown_address_fails(self):
        result = run_program(
            L.ret(L.eq(L.call("munmap", 12345, 8), ERR)),
        )
        assert result.test_cases[0].exit_code == 1

    def test_shared_anonymous_mapping_visible_after_fork(self):
        # The parent maps a shared page, forks, the child writes into it and
        # the parent reads the child's value back after waitpid.
        result = run_program(
            L.decl("p", L.call("mmap", 0, 4, PROT_RW,
                               MAP_SHARED | MAP_ANONYMOUS, ERR, 0)),
            L.store(L.var("p"), 0, 1),
            L.decl("pid", L.call("fork")),
            L.if_(L.eq(L.var("pid"), 0), [
                L.store(L.var("p"), 0, 77),
                L.expr_stmt(L.call("exit", 0)),
            ]),
            L.expr_stmt(L.call("waitpid", L.var("pid"))),
            L.ret(L.index(L.var("p"), 0)),
        )
        assert result.test_cases[0].exit_code == 77


class TestMmapFileBacked:
    def test_private_file_mapping_snapshots_contents(self):
        def setup(state):
            add_concrete_file(state, "/data/blob", b"ABCDEF")

        result = run_program(
            L.decl("fd", L.call("open", L.strconst("/data/blob"), 0)),
            L.decl("p", L.call("mmap", 0, 6, PROT_RW, MAP_PRIVATE,
                               L.var("fd"), 0)),
            L.ret(L.index(L.var("p"), 2)),
            setup=setup,
        )
        assert result.test_cases[0].exit_code == ord("C")

    def test_private_file_mapping_does_not_write_back(self):
        def setup(state):
            add_concrete_file(state, "/data/blob", b"ABCDEF")

        def check(state):
            node = posix_of(state).filesystem[b"/data/blob"]
            return node.data.cells[0]

        result = run_program(
            L.decl("fd", L.call("open", L.strconst("/data/blob"), 0)),
            L.decl("p", L.call("mmap", 0, 6, PROT_RW, MAP_PRIVATE,
                               L.var("fd"), 0)),
            L.store(L.var("p"), 0, ord("z")),
            L.expr_stmt(L.call("munmap", L.var("p"), 6)),
            L.decl("buf", L.call("malloc", 1)),
            L.expr_stmt(L.call("lseek", L.var("fd"), 0, 0)),
            L.expr_stmt(L.call("read", L.var("fd"), L.var("buf"), 1)),
            L.ret(L.index(L.var("buf"), 0)),
            setup=setup,
        )
        assert result.test_cases[0].exit_code == ord("A")

    def test_shared_file_mapping_msync_writes_back(self):
        def setup(state):
            add_concrete_file(state, "/data/blob", b"ABCDEF")

        result = run_program(
            L.decl("fd", L.call("open", L.strconst("/data/blob"), 0)),
            L.decl("p", L.call("mmap", 0, 6, PROT_RW, MAP_SHARED,
                               L.var("fd"), 0)),
            L.store(L.var("p"), 1, ord("z")),
            L.expr_stmt(L.call("msync", L.var("p"), 6, 0)),
            L.decl("buf", L.call("malloc", 2)),
            L.expr_stmt(L.call("read", L.var("fd"), L.var("buf"), 2)),
            L.ret(L.index(L.var("buf"), 1)),
            setup=setup,
        )
        assert result.test_cases[0].exit_code == ord("z")

    def test_shared_file_mapping_written_back_on_munmap(self):
        def setup(state):
            add_concrete_file(state, "/data/blob", b"AB")

        result = run_program(
            L.decl("fd", L.call("open", L.strconst("/data/blob"), 0)),
            L.decl("p", L.call("mmap", 0, 2, PROT_RW, MAP_SHARED,
                               L.var("fd"), 0)),
            L.store(L.var("p"), 0, ord("Q")),
            L.expr_stmt(L.call("munmap", L.var("p"), 2)),
            L.decl("buf", L.call("malloc", 1)),
            L.expr_stmt(L.call("read", L.var("fd"), L.var("buf"), 1)),
            L.ret(L.index(L.var("buf"), 0)),
            setup=setup,
        )
        assert result.test_cases[0].exit_code == ord("Q")

    def test_mmap_on_bad_descriptor_fails(self):
        result = run_program(
            L.ret(L.eq(L.call("mmap", 0, 4, PROT_RW, MAP_PRIVATE, 99, 0),
                       MAP_FAILED)),
        )
        assert result.test_cases[0].exit_code == 1


class TestSharedMemorySegments:
    def test_shmget_requires_creat_for_new_key(self):
        result = run_program(
            L.ret(L.eq(L.call("shmget", 42, 16, 0), ERR)),
        )
        assert result.test_cases[0].exit_code == 1

    def test_shmget_shmat_roundtrip(self):
        result = run_program(
            L.decl("id", L.call("shmget", 42, 16, IPC_CREAT)),
            L.decl("p", L.call("shmat", L.var("id"))),
            L.store(L.var("p"), 5, 0x33),
            L.ret(L.index(L.var("p"), 5)),
        )
        assert result.test_cases[0].exit_code == 0x33

    def test_shmget_excl_on_existing_key_fails(self):
        result = run_program(
            L.expr_stmt(L.call("shmget", 7, 8, IPC_CREAT)),
            L.ret(L.eq(L.call("shmget", 7, 8, IPC_CREAT | IPC_EXCL), ERR)),
        )
        assert result.test_cases[0].exit_code == 1

    def test_segment_shared_across_fork(self):
        result = run_program(
            L.decl("id", L.call("shmget", 1, 4, IPC_CREAT)),
            L.decl("p", L.call("shmat", L.var("id"))),
            L.decl("pid", L.call("fork")),
            L.if_(L.eq(L.var("pid"), 0), [
                L.decl("q", L.call("shmat", L.var("id"))),
                L.store(L.var("q"), 0, 99),
                L.expr_stmt(L.call("exit", 0)),
            ]),
            L.expr_stmt(L.call("waitpid", L.var("pid"))),
            L.ret(L.index(L.var("p"), 0)),
        )
        assert result.test_cases[0].exit_code == 99

    def test_shmctl_rmid_destroys_when_detached(self):
        def check(state):
            return len(posix_of(state).shm_segments)

        result = run_program(
            L.decl("id", L.call("shmget", 3, 8, IPC_CREAT)),
            L.decl("p", L.call("shmat", L.var("id"))),
            L.expr_stmt(L.call("shmctl", L.var("id"), 0)),
            L.expr_stmt(L.call("shmdt", L.var("p"))),
            # The key is gone, so re-getting it without IPC_CREAT fails.
            L.ret(L.eq(L.call("shmget", 3, 8, 0), ERR)),
        )
        assert result.test_cases[0].exit_code == 1


class TestMessageQueues:
    def test_msgget_requires_creat(self):
        result = run_program(
            L.ret(L.eq(L.call("msgget", 11, 0), ERR)),
        )
        assert result.test_cases[0].exit_code == 1

    def test_send_receive_roundtrip(self):
        result = run_program(
            L.decl("q", L.call("msgget", 11, IPC_CREAT)),
            L.decl("msg", L.strconst("hey")),
            L.expr_stmt(L.call("msgsnd", L.var("q"), 1, L.var("msg"), 3, 0)),
            L.decl("buf", L.call("malloc", 8)),
            L.decl("n", L.call("msgrcv", L.var("q"), L.var("buf"), 8, 0, 0)),
            L.if_(L.ne(L.var("n"), 3), [L.ret(100)]),
            L.ret(L.index(L.var("buf"), 1)),
        )
        assert result.test_cases[0].exit_code == ord("e")

    def test_receive_by_type_skips_other_types(self):
        result = run_program(
            L.decl("q", L.call("msgget", 12, IPC_CREAT)),
            L.expr_stmt(L.call("msgsnd", L.var("q"), 1, L.strconst("a"), 1, 0)),
            L.expr_stmt(L.call("msgsnd", L.var("q"), 2, L.strconst("b"), 1, 0)),
            L.decl("buf", L.call("malloc", 4)),
            L.expr_stmt(L.call("msgrcv", L.var("q"), L.var("buf"), 4, 2, 0)),
            L.ret(L.index(L.var("buf"), 0)),
        )
        assert result.test_cases[0].exit_code == ord("b")

    def test_nonblocking_receive_on_empty_queue_fails(self):
        result = run_program(
            L.decl("q", L.call("msgget", 13, IPC_CREAT)),
            L.decl("buf", L.call("malloc", 4)),
            L.ret(L.eq(L.call("msgrcv", L.var("q"), L.var("buf"), 4, 0,
                              IPC_NOWAIT), ERR)),
        )
        assert result.test_cases[0].exit_code == 1

    def test_blocking_receive_woken_by_second_thread(self):
        # Thread "sender" posts a message; main blocks in msgrcv until then.
        sender = L.func(
            "sender", ["q"],
            L.expr_stmt(L.call("msgsnd", L.var("q"), 1, L.strconst("x"), 1, 0)),
            L.ret(0),
        )
        result = run_program(
            L.decl("q", L.call("msgget", 14, IPC_CREAT)),
            L.decl("tid", L.call("pthread_create", L.strconst("sender"),
                                 L.var("q"))),
            L.decl("buf", L.call("malloc", 4)),
            L.decl("n", L.call("msgrcv", L.var("q"), L.var("buf"), 4, 0, 0)),
            L.expr_stmt(L.call("pthread_join", L.var("tid"))),
            L.ret(L.index(L.var("buf"), 0)),
            functions=[sender],
        )
        assert result.test_cases[0].exit_code == ord("x")

    def test_msgctl_rmid_removes_queue(self):
        result = run_program(
            L.decl("q", L.call("msgget", 15, IPC_CREAT)),
            L.expr_stmt(L.call("msgctl", L.var("q"), 0)),
            L.ret(L.eq(L.call("msgget", 15, 0), ERR)),
        )
        assert result.test_cases[0].exit_code == 1
