"""Integration tests: the cluster running the paper's targets end to end."""

import pytest

from repro.cluster import ClusterConfig
from repro.engine import BugKind
from repro.targets import bandicoot, curl, memcached, printf


class TestClusterOnTargets:
    def test_memcached_symbolic_packet_cluster_run(self):
        test = memcached.make_symbolic_packets_test(num_packets=1, packet_size=5)
        single = test.run_single()
        clustered = memcached.make_symbolic_packets_test(
            num_packets=1, packet_size=5).run_cluster(
                num_workers=4, instructions_per_round=150)
        assert clustered.exhausted
        assert clustered.paths_completed == single.paths_completed
        assert clustered.covered_lines == single.covered_lines

    def test_printf_cluster_scales_rounds_down(self):
        rounds = {}
        for workers in (1, 4):
            test = printf.make_symbolic_test(format_length=3)
            result = test.run_cluster(num_workers=workers,
                                      instructions_per_round=120)
            assert result.exhausted
            rounds[workers] = result.rounds_executed
        assert rounds[4] <= rounds[1]

    def test_bug_finding_works_through_the_cluster(self):
        result = curl.make_globbing_test().run_cluster(
            num_workers=3, instructions_per_round=200)
        assert any(b.kind == BugKind.MEMORY_ERROR for b in result.bugs)

    def test_bandicoot_cluster_exhaustive(self):
        result = bandicoot.make_get_exploration_test().run_cluster(
            num_workers=2, instructions_per_round=200)
        assert result.exhausted
        assert any(b.kind == BugKind.MEMORY_ERROR for b in result.bugs)

    def test_useful_work_close_to_single_node_total(self):
        # Dynamic partitioning may re-execute the post-fork suffix of
        # transferred states, but total useful work should stay within a
        # modest factor of the single-node total.
        test = printf.make_symbolic_test(format_length=3)
        single = test.run_single()
        cluster_result = printf.make_symbolic_test(format_length=3).run_cluster(
            num_workers=4, instructions_per_round=120)
        assert cluster_result.total_useful_instructions <= 1.5 * single.instructions_executed

    def test_worker_stats_reported_per_worker(self):
        result = printf.make_symbolic_test(format_length=2).run_cluster(
            num_workers=3, instructions_per_round=60)
        assert set(result.worker_stats) == {1, 2, 3}
        assert result.total_useful_instructions == sum(
            s.useful_instructions for s in result.worker_stats.values())
