"""Unit tests for the virtual-clock time functions and environment variables."""

from repro import lang as L
from repro.posix.data import posix_of
from repro.posix.env import add_env_var, add_symbolic_env_var
from repro.testing import SymbolicTest


def run_program(*main_body, functions=(), setup=None, options=None):
    program = L.program("p", *functions, L.func("main", [], *main_body))
    test = SymbolicTest("t", program, setup=setup, options=options or {})
    return test.run_single()


class TestVirtualClock:
    def test_time_is_monotonically_increasing(self):
        result = run_program(
            L.decl("t1", L.call("time", 0)),
            L.decl("t2", L.call("time", 0)),
            L.ret(L.ge(L.var("t2"), L.var("t1"))),
        )
        assert result.test_cases[0].exit_code == 1

    def test_clock_ns_advances_on_every_query(self):
        result = run_program(
            L.decl("a", L.call("c9_clock_ns")),
            L.decl("b", L.call("c9_clock_ns")),
            L.ret(L.gt(L.var("b"), L.var("a"))),
        )
        assert result.test_cases[0].exit_code == 1

    def test_sleep_advances_clock_by_at_least_duration(self):
        result = run_program(
            L.decl("a", L.call("c9_clock_ns")),
            L.expr_stmt(L.call("usleep", 500)),     # 500 us = 500_000 ns
            L.decl("b", L.call("c9_clock_ns")),
            L.ret(L.ge(L.sub(L.var("b"), L.var("a")), 500_000)),
        )
        assert result.test_cases[0].exit_code == 1

    def test_gettimeofday_writes_seconds_and_micros(self):
        result = run_program(
            L.decl("tv", L.call("malloc", 8)),
            L.expr_stmt(L.call("gettimeofday", L.var("tv"))),
            # The virtual epoch starts at 1_000 seconds, so the low byte of
            # the seconds field is non-trivial and deterministic.
            L.ret(L.index(L.var("tv"), 0)),
        )
        expected = (1_000_000_000_000 + 1_000_000) // 1_000_000_000
        assert result.test_cases[0].exit_code == expected & 0xFF

    def test_clock_gettime_writes_into_buffer(self):
        result = run_program(
            L.decl("ts", L.call("malloc", 8)),
            L.decl("rc", L.call("clock_gettime", 0, L.var("ts"))),
            L.ret(L.var("rc")),
        )
        assert result.test_cases[0].exit_code == 0

    def test_set_clock_step_controls_tick(self):
        result = run_program(
            L.expr_stmt(L.call("c9_set_clock_step", 0)),
            L.decl("a", L.call("c9_clock_ns")),
            L.decl("b", L.call("c9_clock_ns")),
            L.ret(L.eq(L.var("a"), L.var("b"))),
        )
        assert result.test_cases[0].exit_code == 1

    def test_time_replay_deterministic_across_states(self):
        # The clock forks with the state: both branches observe the same
        # timestamp sequence regardless of exploration order.
        result = run_program(
            L.decl("buf", L.call("cloud9_symbolic_buffer", 1, L.strconst("b"))),
            L.decl("t", L.call("time", 0)),
            L.if_(L.gt(L.index(L.var("buf"), 0), 10), [L.ret(L.var("t"))],
                  [L.ret(L.var("t"))]),
        )
        codes = {tc.exit_code for tc in result.test_cases}
        assert len(codes) == 1


class TestEnvironmentVariables:
    def test_getenv_missing_returns_null(self):
        result = run_program(
            L.ret(L.call("getenv", L.strconst("HOME"))),
        )
        assert result.test_cases[0].exit_code == 0

    def test_getenv_returns_preset_value(self):
        def setup(state):
            add_env_var(state, "LANG", "C")

        result = run_program(
            L.decl("p", L.call("getenv", L.strconst("LANG"))),
            L.ret(L.index(L.var("p"), 0)),
            setup=setup,
        )
        assert result.test_cases[0].exit_code == ord("C")

    def test_setenv_then_getenv(self):
        result = run_program(
            L.expr_stmt(L.call("setenv", L.strconst("MODE"), L.strconst("fast"), 1)),
            L.decl("p", L.call("getenv", L.strconst("MODE"))),
            L.ret(L.index(L.var("p"), 1)),
        )
        assert result.test_cases[0].exit_code == ord("a")

    def test_setenv_without_overwrite_keeps_old_value(self):
        result = run_program(
            L.expr_stmt(L.call("setenv", L.strconst("X"), L.strconst("1"), 1)),
            L.expr_stmt(L.call("setenv", L.strconst("X"), L.strconst("2"), 0)),
            L.decl("p", L.call("getenv", L.strconst("X"))),
            L.ret(L.index(L.var("p"), 0)),
        )
        assert result.test_cases[0].exit_code == ord("1")

    def test_unsetenv_removes_variable(self):
        result = run_program(
            L.expr_stmt(L.call("setenv", L.strconst("X"), L.strconst("1"), 1)),
            L.expr_stmt(L.call("unsetenv", L.strconst("X"))),
            L.ret(L.call("getenv", L.strconst("X"))),
        )
        assert result.test_cases[0].exit_code == 0

    def test_getenv_value_is_nul_terminated(self):
        def setup(state):
            add_env_var(state, "PATH", "/bin")

        result = run_program(
            L.decl("p", L.call("getenv", L.strconst("PATH"))),
            L.ret(L.call("strlen", L.var("p"))),
            setup=setup,
        )
        assert result.test_cases[0].exit_code == 4

    def test_symbolic_env_var_forks_consumer(self):
        def setup(state):
            add_symbolic_env_var(state, "FLAG", size=1)

        result = run_program(
            L.decl("p", L.call("getenv", L.strconst("FLAG"))),
            L.if_(L.eq(L.index(L.var("p"), 0), ord("y")), [L.ret(1)], [L.ret(0)]),
            setup=setup,
        )
        assert result.paths_completed == 2
        assert {tc.exit_code for tc in result.test_cases} == {0, 1}

    def test_c9_env_symbolic_native_forks_consumer(self):
        result = run_program(
            L.expr_stmt(L.call("c9_env_symbolic", L.strconst("OPT"), 1)),
            L.decl("p", L.call("getenv", L.strconst("OPT"))),
            L.if_(L.gt(L.index(L.var("p"), 0), 0x40), [L.ret(1)], [L.ret(0)]),
        )
        assert result.paths_completed == 2

    def test_env_shared_across_fork(self):
        result = run_program(
            L.expr_stmt(L.call("setenv", L.strconst("K"), L.strconst("v"), 1)),
            L.decl("pid", L.call("fork")),
            L.if_(L.eq(L.var("pid"), 0), [
                L.decl("p", L.call("getenv", L.strconst("K"))),
                L.expr_stmt(L.call("exit", L.index(L.var("p"), 0))),
            ]),
            L.ret(L.call("waitpid", L.var("pid"))),
        )
        assert result.test_cases[0].exit_code == ord("v")
