"""Unit tests for the constraint solver and its caches."""

import pytest

from repro.solver import expr as E
from repro.solver.cache import ConstraintCache, CounterexampleCache
from repro.solver.model import Model
from repro.solver.solver import Solver, SolverConfig, SolverResult


X = E.bv_symbol("x", 8)
Y = E.bv_symbol("y", 8)
Z = E.bv_symbol("z", 8)


class TestSatisfiability:
    def test_empty_query_is_sat(self):
        solver = Solver()
        result, model = solver.check([])
        assert result == SolverResult.SAT
        assert model is not None

    def test_simple_equality(self):
        solver = Solver()
        model = solver.get_model([E.eq(X, E.bv_const(42, 8))])
        assert model is not None
        assert model.value_of(X) == 42

    def test_contradiction_is_unsat(self):
        solver = Solver()
        assert not solver.is_satisfiable([
            E.eq(X, E.bv_const(1, 8)),
            E.eq(X, E.bv_const(2, 8)),
        ])

    def test_direct_negation_is_unsat(self):
        solver = Solver()
        cond = E.ult(X, E.bv_const(10, 8))
        assert not solver.is_satisfiable([cond, E.logical_not(cond)])

    def test_range_constraints(self):
        solver = Solver()
        model = solver.get_model([
            E.ule(E.bv_const(100, 8), X),
            E.ult(X, E.bv_const(110, 8)),
            E.ne(X, E.bv_const(100, 8)),
        ])
        assert model is not None
        assert 101 <= model.value_of(X) <= 109

    def test_multi_variable(self):
        solver = Solver()
        constraints = [
            E.eq(E.add(X, Y), E.bv_const(10, 8)),
            E.ult(X, E.bv_const(3, 8)),
            E.ule(E.bv_const(1, 8), X),
        ]
        model = solver.get_model(constraints)
        assert model is not None
        assert model.satisfies(constraints)

    def test_unsat_range(self):
        solver = Solver()
        assert not solver.is_satisfiable([
            E.ult(X, E.bv_const(5, 8)),
            E.ult(E.bv_const(10, 8), X),
        ])

    def test_boolean_disjunction(self):
        solver = Solver()
        constraints = [E.logical_or(E.eq(X, E.bv_const(7, 8)),
                                    E.eq(X, E.bv_const(9, 8))),
                       E.ne(X, E.bv_const(7, 8))]
        model = solver.get_model(constraints)
        assert model is not None
        assert model.value_of(X) == 9

    def test_constraints_over_wide_values(self):
        solver = Solver()
        word = E.concat(X, Y)
        constraints = [E.eq(word, E.bv_const(0x0102, 16))]
        model = solver.get_model(constraints)
        assert model is not None
        assert model.value_of(X) == 1
        assert model.value_of(Y) == 2

    def test_three_variables_with_ordering(self):
        solver = Solver()
        constraints = [E.ult(X, Y), E.ult(Y, Z), E.ult(Z, E.bv_const(3, 8))]
        model = solver.get_model(constraints)
        assert model is not None
        assert model.value_of(X) < model.value_of(Y) < model.value_of(Z) < 3

    def test_get_model_returns_none_for_unsat(self):
        solver = Solver()
        assert solver.get_model([E.ult(X, E.bv_const(0, 8))]) is None

    def test_unknown_treated_as_satisfiable(self):
        solver = Solver(SolverConfig(max_search_steps=1))
        constraints = [E.eq(E.mul(X, Y), E.bv_const(143, 8)),
                       E.ne(X, E.bv_const(1, 8)), E.ne(Y, E.bv_const(1, 8)),
                       E.ult(E.bv_const(100, 8), E.add(X, Z))]
        # The step budget is too small to decide; the engine-facing answer
        # must err on the side of "satisfiable".
        assert solver.is_satisfiable(constraints)

    def test_stats_counting(self):
        solver = Solver()
        solver.is_satisfiable([E.eq(X, E.bv_const(3, 8))])
        solver.is_satisfiable([E.ult(X, E.bv_const(0, 8))])
        assert solver.stats.queries == 2
        assert solver.stats.sat_queries >= 1
        assert solver.stats.unsat_queries >= 1


class TestSolverCaching:
    def test_repeated_query_hits_cache(self):
        solver = Solver()
        constraints = [E.eq(X, E.bv_const(5, 8))]
        solver.is_satisfiable(constraints)
        before = solver.stats.cache_hits
        solver.is_satisfiable(list(constraints))
        assert solver.stats.cache_hits > before

    def test_reset_caches(self):
        solver = Solver()
        solver.is_satisfiable([E.eq(X, E.bv_const(5, 8))])
        solver.reset_caches()
        assert solver.cache_stats["constraint_cache_entries"] == 0

    def test_incremental_query_uses_recent_model(self):
        solver = Solver()
        base = [E.ult(X, E.bv_const(100, 8))]
        assert solver.is_satisfiable(base)
        hits_before = solver.stats.cache_hits
        assert solver.is_satisfiable(base + [E.ule(X, E.bv_const(200, 8))])
        assert solver.stats.cache_hits > hits_before


class TestConstraintCache:
    def test_insert_and_lookup(self):
        cache = ConstraintCache()
        constraints = [E.eq(X, E.bv_const(1, 8))]
        assert cache.lookup(constraints) is None
        cache.insert(constraints, True, Model({X: 1}))
        hit = cache.lookup(constraints)
        assert hit is not None and hit[0] is True

    def test_order_insensitive_key(self):
        cache = ConstraintCache()
        a = E.eq(X, E.bv_const(1, 8))
        b = E.ne(Y, E.bv_const(0, 8))
        cache.insert([a, b], False, None)
        assert cache.lookup([b, a]) == (False, None)

    def test_capacity_eviction(self):
        cache = ConstraintCache(capacity=2)
        for i in range(3):
            cache.insert([E.eq(X, E.bv_const(i, 8))], True, Model({X: i}))
        assert len(cache) <= 2

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ConstraintCache(capacity=0)


class TestCounterexampleCache:
    def test_superset_provides_model_for_subset(self):
        cache = CounterexampleCache()
        a = E.eq(X, E.bv_const(5, 8))
        b = E.ult(Y, E.bv_const(10, 8))
        cache.insert([a, b], True, Model({X: 5, Y: 0}))
        hit = cache.lookup([a])
        assert hit is not None and hit[0] is True

    def test_subset_model_reused_when_it_satisfies(self):
        cache = CounterexampleCache()
        a = E.eq(X, E.bv_const(5, 8))
        cache.insert([a], True, Model({X: 5}))
        hit = cache.lookup([a, E.ult(X, E.bv_const(10, 8))])
        assert hit is not None and hit[0] is True

    def test_unsat_subset_implies_unsat_superset(self):
        cache = CounterexampleCache()
        a = E.ult(X, E.bv_const(0, 8))
        cache.insert([a], False, None)
        hit = cache.lookup([a, E.eq(Y, E.bv_const(1, 8))])
        assert hit == (False, None)

    def test_miss_returns_none(self):
        cache = CounterexampleCache()
        assert cache.lookup([E.eq(X, E.bv_const(1, 8))]) is None

    def test_capacity_hit_clears_wholesale_including_recent_windows(self):
        # Eviction is wholesale: reaching capacity drops every entry AND the
        # recent-window lists used for subset/superset scans.
        cache = CounterexampleCache(capacity=3, scan_window=8)
        entries = [[E.eq(X, E.bv_const(i, 8))] for i in range(3)]
        for i, constraints in enumerate(entries):
            cache.insert(constraints, True, Model({X: i}))
        assert len(cache) == 3
        overflow = [E.eq(Y, E.bv_const(9, 8))]
        cache.insert(overflow, True, Model({Y: 9}))
        # Only the overflowing entry survives.
        assert len(cache) == 1
        assert cache.lookup(entries[0]) is None
        assert cache._recent_sat == [frozenset(overflow)]
        assert cache._recent_unsat == []
        # Subset reasoning over the dropped entries is gone too: a superset
        # of a pre-clear UNSAT entry must now miss.
        unsat_cache = CounterexampleCache(capacity=1, scan_window=8)
        impossible = [E.ult(X, E.bv_const(0, 8))]
        unsat_cache.insert(impossible, False, None)
        unsat_cache.insert([E.eq(Y, E.bv_const(2, 8))], True, Model({Y: 2}))
        assert unsat_cache.lookup(impossible + [E.eq(Z, E.bv_const(1, 8))]) is None

    def test_sat_insert_without_model_is_dropped(self):
        # A SAT verdict with no model carries nothing reusable for the
        # subset/superset reasoning; the insert is silently skipped.
        cache = CounterexampleCache()
        constraints = [E.eq(X, E.bv_const(5, 8))]
        cache.insert(constraints, True, None)
        assert len(cache) == 0
        assert cache._recent_sat == []
        assert cache.lookup(constraints) is None

    def test_hit_and_miss_accounting(self):
        cache = CounterexampleCache()
        a = E.eq(X, E.bv_const(5, 8))
        b = E.ult(X, E.bv_const(10, 8))
        impossible = E.ult(Y, E.bv_const(0, 8))
        cache.insert([a], True, Model({X: 5}))
        cache.insert([impossible], False, None)
        assert cache.stats.lookups == 0
        assert cache.lookup([a]) == (True, Model({X: 5}))      # exact SAT
        assert cache.lookup([a, b]) is not None                # subset model
        assert cache.lookup([impossible, a]) == (False, None)  # unsat subset
        assert cache.lookup([b]) is None                       # miss
        assert cache.stats.hits == 3
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == pytest.approx(0.75)


class TestModel:
    def test_evaluate_with_defaults(self):
        model = Model({X: 7})
        assert model.evaluate(E.add(X, Y)) == 7  # Y defaults to 0

    def test_as_bytes(self):
        model = Model({X: 0x41, Y: 0x42})
        assert model.as_bytes([X, Y]) == b"AB"

    def test_satisfies(self):
        model = Model({X: 3})
        assert model.satisfies([E.ult(X, E.bv_const(5, 8))])
        assert not model.satisfies([E.ult(E.bv_const(5, 8), X)])

    def test_merged_with(self):
        model = Model({X: 1}).merged_with({Y: 2})
        assert model.value_of(Y) == 2 and model.value_of(X) == 1
