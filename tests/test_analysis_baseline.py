"""Baseline grandfathering: adopt, ratchet one way, report stale entries."""

import json

from repro.analysis import baseline
from repro.analysis.core import Finding


def _finding(checker="CONC001", path="src/a.py", line=10,
             message="blocking call", context="C.f"):
    return Finding(checker, path, line, message, context=context)


class TestRoundTrip:
    def test_write_then_load(self, tmp_path):
        path = str(tmp_path / "analysis_baseline.json")
        count = baseline.write_baseline(
            [_finding(), _finding(checker="DET003", line=4)], path)
        assert count == 2
        entries = baseline.load_baseline(path)
        assert {e["checker"] for e in entries} == {"CONC001", "DET003"}
        assert all(set(e) == {"checker", "path", "context", "message"}
                   for e in entries)  # no line numbers in the fingerprint

    def test_missing_file_is_an_empty_baseline(self, tmp_path):
        assert baseline.load_baseline(str(tmp_path / "absent.json")) == []

    def test_corrupt_file_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json", encoding="utf-8")
        try:
            baseline.load_baseline(str(path))
        except ValueError as exc:
            assert "not valid JSON" in str(exc)
        else:
            raise AssertionError("expected ValueError")


class TestApply:
    def test_grandfathered_finding_is_suppressed(self, tmp_path):
        path = str(tmp_path / "b.json")
        old = _finding()
        baseline.write_baseline([old], path)
        # Same defect, different line: still grandfathered (fingerprint is
        # line-independent).
        moved = _finding(line=99)
        active, suppressed, stale = baseline.apply_baseline(
            [moved], baseline.load_baseline(path))
        assert active == []
        assert suppressed == 1
        assert stale == []

    def test_new_finding_stays_active(self, tmp_path):
        path = str(tmp_path / "b.json")
        baseline.write_baseline([_finding()], path)
        fresh = _finding(checker="DET001", message="global RNG")
        active, suppressed, _ = baseline.apply_baseline(
            [_finding(), fresh], baseline.load_baseline(path))
        assert active == [fresh]
        assert suppressed == 1

    def test_fixed_finding_surfaces_as_stale(self, tmp_path):
        path = str(tmp_path / "b.json")
        baseline.write_baseline([_finding()], path)
        active, suppressed, stale = baseline.apply_baseline(
            [], baseline.load_baseline(path))
        assert active == []
        assert suppressed == 0
        assert len(stale) == 1 and stale[0]["checker"] == "CONC001"

    def test_duplicate_fingerprints_count_as_a_multiset(self):
        # Two identical defects in one function (same message, same
        # qualname): the baseline holds two entries; fixing one of them
        # leaves one suppressed and one stale.
        entries = [{"checker": "CONC001", "path": "src/a.py",
                    "context": "C.f", "message": "blocking call"}] * 2
        active, suppressed, stale = baseline.apply_baseline(
            [_finding()], entries)
        assert active == []
        assert suppressed == 1
        assert len(stale) == 1

    def test_baseline_file_format_is_versioned(self, tmp_path):
        path = tmp_path / "b.json"
        baseline.write_baseline([_finding()], str(path))
        data = json.loads(path.read_text(encoding="utf-8"))
        assert data["version"] == 1
        assert isinstance(data["findings"], list)
