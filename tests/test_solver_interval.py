"""Unit tests for the unsigned interval domain."""

from repro.solver import expr as E
from repro.solver.interval import (
    Interval,
    full_interval,
    interval_of,
    refine_bounds,
    truth_of,
)


X = E.bv_symbol("x", 8)
Y = E.bv_symbol("y", 8)


class TestInterval:
    def test_basic_properties(self):
        iv = Interval(3, 10)
        assert not iv.is_empty
        assert iv.size() == 8
        assert iv.contains(3) and iv.contains(10) and not iv.contains(11)

    def test_empty_interval(self):
        assert Interval(5, 2).is_empty
        assert Interval(5, 2).size() == 0

    def test_intersect_union(self):
        a, b = Interval(0, 10), Interval(5, 20)
        assert a.intersect(b) == Interval(5, 10)
        assert a.union(b) == Interval(0, 20)
        assert Interval(0, 1).intersect(Interval(5, 6)).is_empty


class TestIntervalOf:
    def test_constant_and_symbol(self):
        assert interval_of(E.bv_const(7, 8), {}) == Interval(7, 7)
        assert interval_of(X, {}) == full_interval(8)
        assert interval_of(X, {X: Interval(1, 3)}) == Interval(1, 3)

    def test_add_without_overflow(self):
        expr = E.add(X, E.bv_const(10, 8))
        assert interval_of(expr, {X: Interval(0, 5)}) == Interval(10, 15)

    def test_add_with_possible_overflow_widens(self):
        expr = E.add(X, E.bv_const(200, 8))
        assert interval_of(expr, {X: Interval(0, 100)}) == full_interval(8)

    def test_zext_preserves_interval(self):
        expr = E.zext(X, 32)
        assert interval_of(expr, {X: Interval(2, 9)}) == Interval(2, 9)

    def test_concat(self):
        expr = E.concat(X, Y)
        iv = interval_of(expr, {X: Interval(1, 1), Y: Interval(0, 255)})
        assert iv == Interval(256, 511)

    def test_udiv_by_positive(self):
        expr = E.udiv(X, E.bv_const(2, 8))
        assert interval_of(expr, {X: Interval(4, 9)}) == Interval(2, 4)


class TestTruthOf:
    def test_decided_comparisons(self):
        bounds = {X: Interval(0, 5), Y: Interval(10, 20)}
        assert truth_of(E.ult(X, Y), bounds) is True
        assert truth_of(E.ult(Y, X), bounds) is False
        assert truth_of(E.eq(X, Y), bounds) is False

    def test_undecided_comparison(self):
        bounds = {X: Interval(0, 15), Y: Interval(10, 20)}
        assert truth_of(E.ult(X, Y), bounds) is None

    def test_point_equality(self):
        bounds = {X: Interval(4, 4), Y: Interval(4, 4)}
        assert truth_of(E.eq(X, Y), bounds) is True
        assert truth_of(E.ne(X, Y), bounds) is False

    def test_connectives(self):
        bounds = {X: Interval(0, 5)}
        lt10 = E.ult(X, E.bv_const(10, 8))
        gt100 = E.ult(E.bv_const(100, 8), X)
        assert truth_of(E.logical_and(lt10, lt10), bounds) is True
        assert truth_of(E.logical_or(gt100, lt10), bounds) is True
        assert truth_of(E.logical_and(lt10, gt100), bounds) is False
        assert truth_of(E.logical_not(gt100), bounds) is True

    def test_signed_comparison_same_half(self):
        bounds = {X: Interval(1, 5), Y: Interval(10, 20)}
        assert truth_of(E.slt(X, Y), bounds) is True


class TestRefineBounds:
    def test_equality_pins_symbol(self):
        bounds = {X: full_interval(8)}
        refined, changed = refine_bounds(E.eq(X, E.bv_const(42, 8)), bounds)
        assert changed
        assert refined[X] == Interval(42, 42)

    def test_ult_refines_upper_bound(self):
        bounds = {X: full_interval(8)}
        refined, changed = refine_bounds(E.ult(X, E.bv_const(10, 8)), bounds)
        assert changed
        assert refined[X] == Interval(0, 9)

    def test_ule_lower_side(self):
        bounds = {X: full_interval(8)}
        refined, _ = refine_bounds(E.ule(E.bv_const(100, 8), X), bounds)
        assert refined[X] == Interval(100, 255)

    def test_zext_is_stripped(self):
        bounds = {X: full_interval(8)}
        constraint = E.ult(E.zext(X, 32), E.bv_const(5, 32))
        refined, changed = refine_bounds(constraint, bounds)
        assert changed
        assert refined[X] == Interval(0, 4)

    def test_ne_trims_endpoints_only(self):
        bounds = {X: Interval(0, 255)}
        refined, changed = refine_bounds(E.ne(X, E.bv_const(0, 8)), bounds)
        assert changed
        assert refined[X] == Interval(1, 255)
        refined2, changed2 = refine_bounds(E.ne(X, E.bv_const(7, 8)), refined)
        assert not changed2
        assert refined2[X] == Interval(1, 255)

    def test_conjunction_refines_both_sides(self):
        bounds = {X: full_interval(8)}
        constraint = E.logical_and(E.ule(E.bv_const(3, 8), X),
                                   E.ult(X, E.bv_const(10, 8)))
        refined, _ = refine_bounds(constraint, bounds)
        assert refined[X] == Interval(3, 9)

    def test_unchanged_returns_false(self):
        bounds = {X: Interval(0, 9)}
        _, changed = refine_bounds(E.ult(X, E.bv_const(10, 8)), bounds)
        assert not changed
