"""Integration tests combining several POSIX-model components in one program.

The paper's point about the environment model is that *combinations* matter:
real servers fork, share memory, poll sockets and read configuration in the
same request path.  These tests run small programs that cross component
boundaries (processes x mmap x IPC x environment x virtual clock x pipes) and
check both the computed results and the engine-level invariants (no spurious
bugs, deterministic outcomes across cluster execution).
"""

from repro import lang as L
from repro.engine import BugKind
from repro.posix.api import add_concrete_file
from repro.posix.env import add_env_var, add_symbolic_env_var
from repro.testing import SymbolicTest

IPC_CREAT = 0x200
MAP_SHARED = 0x01
MAP_PRIVATE = 0x02
MAP_ANONYMOUS = 0x20
PROT_RW = 0x3


def run_program(*main_body, functions=(), setup=None, options=None):
    program = L.program("p", *functions, L.func("main", [], *main_body))
    test = SymbolicTest("t", program, setup=setup, options=options or {})
    return test.run_single()


class TestForkPlusSharedMemory:
    def test_two_children_increment_a_shared_counter(self):
        result = run_program(
            L.decl("id", L.call("shmget", 1, 4, IPC_CREAT)),
            L.decl("p", L.call("shmat", L.var("id"))),
            L.decl("c1", L.call("fork")),
            L.if_(L.eq(L.var("c1"), 0), [
                L.store(L.var("p"), 0, L.add(L.index(L.var("p"), 0), 1)),
                L.expr_stmt(L.call("exit", 0)),
            ]),
            L.expr_stmt(L.call("waitpid", L.var("c1"))),
            L.decl("c2", L.call("fork")),
            L.if_(L.eq(L.var("c2"), 0), [
                L.store(L.var("p"), 0, L.add(L.index(L.var("p"), 0), 1)),
                L.expr_stmt(L.call("exit", 0)),
            ]),
            L.expr_stmt(L.call("waitpid", L.var("c2"))),
            L.ret(L.index(L.var("p"), 0)),
        )
        assert not result.bugs
        assert result.test_cases[0].exit_code == 2

    def test_message_queue_carries_child_result_to_parent(self):
        result = run_program(
            L.decl("q", L.call("msgget", 5, IPC_CREAT)),
            L.decl("pid", L.call("fork")),
            L.if_(L.eq(L.var("pid"), 0), [
                L.decl("msg", L.call("malloc", 1)),
                L.store(L.var("msg"), 0, 41),
                L.expr_stmt(L.call("msgsnd", L.var("q"), 1, L.var("msg"), 1, 0)),
                L.expr_stmt(L.call("exit", 0)),
            ]),
            L.decl("buf", L.call("malloc", 1)),
            L.expr_stmt(L.call("msgrcv", L.var("q"), L.var("buf"), 1, 0, 0)),
            L.expr_stmt(L.call("waitpid", L.var("pid"))),
            L.ret(L.add(L.index(L.var("buf"), 0), 1)),
        )
        assert not result.bugs
        assert result.test_cases[0].exit_code == 42


class TestMmapAcrossProcesses:
    def test_child_publishes_through_shared_file_mapping(self):
        def setup(state):
            add_concrete_file(state, "/shared.dat", b"\x00\x00")

        result = run_program(
            L.decl("fd", L.call("open", L.strconst("/shared.dat"), 0)),
            L.decl("pid", L.call("fork")),
            L.if_(L.eq(L.var("pid"), 0), [
                L.decl("m", L.call("mmap", 0, 2, PROT_RW, MAP_SHARED,
                                   L.var("fd"), 0)),
                L.store(L.var("m"), 1, 9),
                L.expr_stmt(L.call("msync", L.var("m"), 2, 0)),
                L.expr_stmt(L.call("exit", 0)),
            ]),
            L.expr_stmt(L.call("waitpid", L.var("pid"))),
            L.decl("buf", L.call("malloc", 2)),
            L.expr_stmt(L.call("read", L.var("fd"), L.var("buf"), 2)),
            L.ret(L.index(L.var("buf"), 1)),
            setup=setup,
        )
        assert not result.bugs
        assert result.test_cases[0].exit_code == 9

    def test_private_mapping_is_per_process_after_fork(self):
        result = run_program(
            L.decl("m", L.call("mmap", 0, 1, PROT_RW,
                               MAP_PRIVATE | MAP_ANONYMOUS, 0xFFFFFFFF, 0)),
            L.store(L.var("m"), 0, 5),
            L.decl("pid", L.call("fork")),
            L.if_(L.eq(L.var("pid"), 0), [
                L.store(L.var("m"), 0, 50),
                L.expr_stmt(L.call("exit", 0)),
            ]),
            L.expr_stmt(L.call("waitpid", L.var("pid"))),
            # The child's write stays in the child's address space copy.
            L.ret(L.index(L.var("m"), 0)),
        )
        assert not result.bugs
        assert result.test_cases[0].exit_code == 5


class TestEnvironmentDrivenBranching:
    def test_concrete_env_selects_configuration_path(self):
        def setup(state):
            add_env_var(state, "LEVEL", "2")

        result = run_program(
            L.decl("v", L.call("getenv", L.strconst("LEVEL"))),
            L.if_(L.eq(L.var("v"), 0), [L.ret(0)]),
            L.ret(L.sub(L.index(L.var("v"), 0), ord("0"))),
            setup=setup,
        )
        assert result.test_cases[0].exit_code == 2

    def test_symbolic_env_with_pipe_consumer(self):
        def setup(state):
            add_symbolic_env_var(state, "FLAG", size=1, label="flag")

        # The parent forwards the env byte through a pipe; the branch on the
        # read value forks the state (symbolic data crossing a pipe).
        result = run_program(
            L.decl("fds", L.call("malloc", 2)),
            L.expr_stmt(L.call("pipe", L.var("fds"))),
            L.decl("v", L.call("getenv", L.strconst("FLAG"))),
            L.expr_stmt(L.call("write", L.index(L.var("fds"), 1), L.var("v"), 1)),
            L.decl("buf", L.call("malloc", 1)),
            L.expr_stmt(L.call("read", L.index(L.var("fds"), 0), L.var("buf"), 1)),
            L.if_(L.gt(L.index(L.var("buf"), 0), ord("m")), [L.ret(1)], [L.ret(0)]),
            setup=setup,
        )
        assert result.paths_completed == 2
        assert {tc.exit_code for tc in result.test_cases} == {0, 1}


class TestClockAndScheduling:
    def test_sleep_in_worker_thread_lets_main_progress(self):
        worker = L.func(
            "spinner", ["arena"],
            L.expr_stmt(L.call("usleep", 100)),
            L.store(L.var("arena"), 0, 1),
            L.ret(0),
        )
        result = run_program(
            L.decl("arena", L.call("malloc", 1)),
            L.decl("tid", L.call("pthread_create", L.strconst("spinner"),
                                 L.var("arena"))),
            L.expr_stmt(L.call("pthread_join", L.var("tid"))),
            L.ret(L.index(L.var("arena"), 0)),
            functions=[worker],
        )
        assert not result.bugs
        assert result.test_cases[0].exit_code == 1

    def test_clock_is_identical_on_single_node_and_cluster(self):
        program = L.program("clocked", L.func(
            "main", [],
            L.decl("buf", L.call("cloud9_symbolic_buffer", 1, L.strconst("b"))),
            L.decl("t", L.call("time", 0)),
            L.if_(L.gt(L.index(L.var("buf"), 0), 7), [L.ret(L.mod(L.var("t"), 251))],
                  [L.ret(L.mod(L.var("t"), 251))]),
        ))
        test = SymbolicTest("clocked", program)
        single = test.run_single()
        cluster = test.run_cluster(num_workers=2, instructions_per_round=100)
        single_codes = sorted(tc.exit_code for tc in single.test_cases)
        cluster_codes = sorted(tc.exit_code for tc in cluster.test_cases)
        assert single_codes == cluster_codes


class TestNoSpuriousHangs:
    def test_blocked_msgrcv_without_sender_is_a_deadlock_report(self):
        result = run_program(
            L.decl("q", L.call("msgget", 30, IPC_CREAT)),
            L.decl("buf", L.call("malloc", 1)),
            L.expr_stmt(L.call("msgrcv", L.var("q"), L.var("buf"), 1, 0, 0)),
            L.ret(0),
        )
        assert any(b.kind == BugKind.DEADLOCK for b in result.bugs)

    def test_msgrcv_with_nowait_does_not_hang(self):
        result = run_program(
            L.decl("q", L.call("msgget", 31, IPC_CREAT)),
            L.decl("buf", L.call("malloc", 1)),
            L.expr_stmt(L.call("msgrcv", L.var("q"), L.var("buf"), 1, 0, 0x800)),
            L.ret(7),
        )
        assert not result.bugs
        assert result.test_cases[0].exit_code == 7
