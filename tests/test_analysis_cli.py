"""The ``python -m repro.analysis`` entry point, end to end."""

import json
from pathlib import Path

from repro.analysis import cli

from conftest import write_tree

REPO_ROOT = Path(__file__).resolve().parent.parent

VIOLATING = """\
    import random

    def pick(items):
        return random.choice(items)
"""


def _tree(tmp_path, source=VIOLATING, relpath="src/repro/engine/pick.py"):
    return write_tree(tmp_path, {relpath: source})


def _args(tmp_path, *extra):
    return [*extra, "--baseline", str(tmp_path / "analysis_baseline.json"),
            "--lock", str(tmp_path / "protocol.lock.json")]


class TestExitCodes:
    def test_violations_exit_nonzero_and_print_findings(self, tmp_path, capsys):
        root = _tree(tmp_path)
        assert cli.main(_args(tmp_path, root)) == 1
        out = capsys.readouterr().out
        assert "[DET001]" in out
        assert "pick.py:4" in out
        assert "(fix:" in out

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        root = _tree(tmp_path, source="x = 1\n")
        assert cli.main(_args(tmp_path, root)) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_missing_path_is_a_usage_error(self, tmp_path, capsys):
        assert cli.main([str(tmp_path / "nowhere")]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_unknown_select_family_is_a_usage_error(self, tmp_path, capsys):
        root = _tree(tmp_path)
        assert cli.main(_args(tmp_path, root, "--select", "BOGUS")) == 2
        assert "unknown checker families" in capsys.readouterr().err

    def test_syntax_errors_are_findings_not_crashes(self, tmp_path, capsys):
        root = _tree(tmp_path, source="def broken(:\n")
        assert cli.main(_args(tmp_path, root)) == 1
        assert "[ANA001]" in capsys.readouterr().out


class TestSelect:
    def test_select_filters_checker_families(self, tmp_path, capsys):
        root = _tree(tmp_path)
        assert cli.main(_args(tmp_path, root, "--select", "CONC")) == 0
        assert cli.main(_args(tmp_path, root, "--select", "DET,CONC")) == 1
        assert "[DET001]" in capsys.readouterr().out


class TestBaselineFlow:
    def test_write_baseline_then_rerun_is_green(self, tmp_path, capsys):
        root = _tree(tmp_path)
        assert cli.main(_args(tmp_path, root, "--write-baseline")) == 0
        assert cli.main(_args(tmp_path, root)) == 0
        assert "grandfathered" in capsys.readouterr().out

    def test_new_finding_breaks_through_the_baseline(self, tmp_path, capsys):
        root = _tree(tmp_path)
        assert cli.main(_args(tmp_path, root, "--write-baseline")) == 0
        _tree(tmp_path, relpath="src/repro/engine/other.py", source="""\
            import time

            def stale(job):
                return time.time() - job.created > 60
        """)
        assert cli.main(_args(tmp_path, root)) == 1
        out = capsys.readouterr().out
        assert "[DET003]" in out          # the new one fails the run
        assert "[DET001]" not in out      # the grandfathered one stays quiet

    def test_no_baseline_reports_everything(self, tmp_path, capsys):
        root = _tree(tmp_path)
        assert cli.main(_args(tmp_path, root, "--write-baseline")) == 0
        assert cli.main(_args(tmp_path, root, "--no-baseline")) == 1
        assert "[DET001]" in capsys.readouterr().out

    def test_fixed_finding_is_reported_stale(self, tmp_path, capsys):
        root = _tree(tmp_path)
        assert cli.main(_args(tmp_path, root, "--write-baseline")) == 0
        _tree(tmp_path)  # rewrite tree...
        (Path(root) / "src/repro/engine/pick.py").write_text(
            "def pick(items):\n    return items[0]\n", encoding="utf-8")
        assert cli.main(_args(tmp_path, root)) == 0  # stale is a note, not a failure
        captured = capsys.readouterr()
        assert "stale baseline entr" in captured.err + captured.out


class TestInlineSuppression:
    def test_analysis_ignore_comment_waives_the_line(self, tmp_path):
        root = _tree(tmp_path, source="""\
            import random

            def pick(items):
                return random.choice(items)  # analysis-ignore
        """)
        assert cli.main(_args(tmp_path, root)) == 0

    def test_scoped_ignore_only_waives_the_named_checker(self, tmp_path):
        root = _tree(tmp_path, source="""\
            import random

            def pick(items):
                return random.choice(items)  # analysis-ignore[DET003]
        """)
        assert cli.main(_args(tmp_path, root)) == 1


class TestLockFlow:
    WIRE = {
        "src/repro/distrib/messages.py": """\
            from dataclasses import dataclass

            @dataclass
            class PingCommand:
                nonce: int
        """,
        "src/repro/net/transport.py": """\
            PROTOCOL_VERSION = 1
        """,
    }

    def test_update_lock_writes_and_then_verifies_green(self, tmp_path, capsys):
        root = write_tree(tmp_path, self.WIRE)
        lock = str(tmp_path / "protocol.lock.json")
        assert cli.main([root, "--lock", lock, "--update-lock"]) == 0
        assert "1 message classes" in capsys.readouterr().out
        data = json.loads(Path(lock).read_text(encoding="utf-8"))
        assert data["protocol_version"] == 1
        assert cli.main(_args(tmp_path, root)) == 0

    def test_field_add_without_bump_fails_the_gate(self, tmp_path, capsys):
        root = write_tree(tmp_path, self.WIRE)
        assert cli.main(_args(tmp_path, root, "--update-lock")) == 0
        capsys.readouterr()
        grown = dict(self.WIRE)
        grown["src/repro/distrib/messages.py"] = (
            self.WIRE["src/repro/distrib/messages.py"].replace(
                "nonce: int", "nonce: int\n    urgent: bool = False"))
        write_tree(tmp_path, grown)
        assert cli.main(_args(tmp_path, root)) == 1
        assert "[PROTO001]" in capsys.readouterr().out


class TestShippedTree:
    def test_the_real_tree_is_clean_against_its_committed_lock(self):
        """The repo must stay green under its own gate: no findings beyond
        the committed baseline, lock in sync with the message set."""
        findings = cli.run_analysis(
            [str(REPO_ROOT / "src")],
            lock_path=str(REPO_ROOT / "protocol.lock.json"))
        from repro.analysis import baseline as baseline_module
        entries = baseline_module.load_baseline(
            str(REPO_ROOT / "analysis_baseline.json"))
        active, _, _ = baseline_module.apply_baseline(findings, entries)
        assert active == [], "\n".join(f.render() for f in active)
