"""Property-based tests for the solver substrate (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.solver import expr as E
from repro.solver.interval import Interval, interval_of, truth_of
from repro.solver.model import Model
from repro.solver.simplify import simplify
from repro.solver.solver import Solver


SYMBOLS = [E.bv_symbol("a", 8), E.bv_symbol("b", 8), E.bv_symbol("c", 8)]


def expr_strategy(depth: int = 3):
    """Random 8-bit bitvector expressions over three symbols."""
    leaves = st.one_of(
        st.sampled_from(SYMBOLS),
        st.integers(min_value=0, max_value=255).map(lambda v: E.bv_const(v, 8)),
    )

    def extend(children):
        binops = st.sampled_from([E.add, E.sub, E.mul, E.band, E.bor, E.bxor])
        return st.builds(lambda op, a, b: op(a, b), binops, children, children)

    return st.recursive(leaves, extend, max_leaves=6)


def bool_expr_strategy():
    comparisons = st.sampled_from([E.eq, E.ne, E.ult, E.ule, E.slt, E.sle])
    return st.builds(lambda op, a, b: op(a, b), comparisons,
                     expr_strategy(), expr_strategy())


assignments = st.fixed_dictionaries({
    SYMBOLS[0]: st.integers(min_value=0, max_value=255),
    SYMBOLS[1]: st.integers(min_value=0, max_value=255),
    SYMBOLS[2]: st.integers(min_value=0, max_value=255),
})


@settings(max_examples=150, deadline=None)
@given(expr=expr_strategy(), assignment=assignments)
def test_simplify_preserves_bitvector_semantics(expr, assignment):
    assert E.evaluate(simplify(expr), assignment) == E.evaluate(expr, assignment)


@settings(max_examples=150, deadline=None)
@given(expr=bool_expr_strategy(), assignment=assignments)
def test_simplify_preserves_boolean_semantics(expr, assignment):
    assert E.evaluate(simplify(expr), assignment) == E.evaluate(expr, assignment)


@settings(max_examples=100, deadline=None)
@given(expr=expr_strategy(), assignment=assignments)
def test_interval_domain_is_sound(expr, assignment):
    """The concrete value always lies within the computed interval."""
    bounds = {s: Interval(v, v) for s, v in assignment.items()}
    value = E.evaluate(expr, assignment)
    interval = interval_of(expr, bounds)
    assert interval.lo <= value <= interval.hi


@settings(max_examples=100, deadline=None)
@given(expr=bool_expr_strategy(), assignment=assignments)
def test_truth_of_is_sound(expr, assignment):
    """When the interval domain decides a truth value, it matches reality."""
    bounds = {s: Interval(v, v) for s, v in assignment.items()}
    verdict = truth_of(expr, bounds)
    if verdict is not None:
        assert verdict == E.evaluate(expr, assignment)


@settings(max_examples=60, deadline=None)
@given(constraint=bool_expr_strategy())
def test_solver_models_satisfy_their_constraints(constraint):
    solver = Solver()
    model = solver.get_model([constraint])
    if model is not None:
        assert model.satisfies([constraint])


@settings(max_examples=60, deadline=None)
@given(constraint=bool_expr_strategy(), assignment=assignments)
def test_solver_never_reports_unsat_for_satisfiable_queries(constraint, assignment):
    """If a witness exists, the solver must not claim UNSAT."""
    if E.evaluate(constraint, assignment):
        solver = Solver()
        assert solver.is_satisfiable([constraint])


@settings(max_examples=60, deadline=None)
@given(value=st.integers(min_value=0, max_value=255),
       other=st.integers(min_value=0, max_value=255))
def test_solver_equality_pair(value, other):
    """x == v && x == w is satisfiable exactly when v == w."""
    solver = Solver()
    x = SYMBOLS[0]
    constraints = [E.eq(x, E.bv_const(value, 8)), E.eq(x, E.bv_const(other, 8))]
    assert solver.is_satisfiable(constraints) == (value == other)
