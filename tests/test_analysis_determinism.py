"""DET: nondeterminism sources in schedule/solver decision paths."""

from repro.analysis import determinism
from repro.analysis.core import load_modules

from conftest import write_tree

DECISION_PATH = "src/repro/engine/scheduler_like.py"
BENCH_PATH = "src/repro/bench/report_like.py"


def _check(tmp_path, source, relpath=DECISION_PATH):
    root = write_tree(tmp_path, {relpath: source})
    modules, parse_findings = load_modules([root])
    assert not parse_findings
    return determinism.check(modules)


class TestGlobalRng:
    def test_module_level_random_call_is_det001_everywhere(self, tmp_path):
        findings = _check(tmp_path, """\
            import random

            def pick(items):
                return random.choice(items)
        """, relpath=BENCH_PATH)
        assert [f.checker for f in findings] == ["DET001"]
        assert "random.choice" in findings[0].message

    def test_seeded_instance_rng_is_clean(self, tmp_path):
        findings = _check(tmp_path, """\
            import random

            class Strategy:
                def __init__(self, seed):
                    self.rng = random.Random(seed)
                def pick(self, items):
                    return self.rng.choice(items)
        """)
        assert findings == []

    def test_unseeded_random_instance_is_det002(self, tmp_path):
        findings = _check(tmp_path, """\
            import random

            def make_rng():
                return random.Random()
        """)
        assert [f.checker for f in findings] == ["DET002"]


class TestWallClock:
    def test_time_time_in_a_decision_path_is_det003(self, tmp_path):
        findings = _check(tmp_path, """\
            import time

            def stale(self, job):
                return time.time() - job.created > 60
        """)
        assert [f.checker for f in findings] == ["DET003"]

    def test_time_time_outside_decision_paths_is_fine(self, tmp_path):
        findings = _check(tmp_path, """\
            import time

            def stamp():
                return time.time()
        """, relpath=BENCH_PATH)
        assert findings == []

    def test_monotonic_is_always_fine(self, tmp_path):
        findings = _check(tmp_path, """\
            import time

            def elapsed(start):
                return time.monotonic() - start
        """)
        assert findings == []


class TestSetOrder:
    def test_next_iter_over_a_set_is_det004(self, tmp_path):
        findings = _check(tmp_path, """\
            def pick(self):
                pending = {1, 2, 3}
                return next(iter(pending))
        """)
        assert [f.checker for f in findings] == ["DET004"]

    def test_set_pop_is_det004(self, tmp_path):
        findings = _check(tmp_path, """\
            def pick(self, jobs):
                ready = set(jobs)
                return ready.pop()
        """)
        assert [f.checker for f in findings] == ["DET004"]

    def test_first_match_loop_over_a_set_is_det004(self, tmp_path):
        findings = _check(tmp_path, """\
            def pick(self, pending: set):
                for job in pending:
                    if job.ready:
                        return job
        """)
        assert [f.checker for f in findings] == ["DET004"]

    def test_sorted_iteration_is_the_fix(self, tmp_path):
        findings = _check(tmp_path, """\
            def pick(self, pending: set):
                for job in sorted(pending):
                    if job.ready:
                        return job
        """)
        assert findings == []

    def test_fold_over_a_set_is_order_insensitive(self, tmp_path):
        findings = _check(tmp_path, """\
            def total(self, weights: set):
                acc = 0
                for w in weights:
                    acc += w
                return acc
        """)
        assert findings == []

    def test_dict_pop_is_not_a_set_pop(self, tmp_path):
        # The solver's cache eviction pops from a dict -- insertion-ordered,
        # deterministic, and must not be flagged.
        findings = _check(tmp_path, """\
            def evict(self):
                table = {}
                table.pop()
        """)
        assert findings == []

    def test_outside_decision_paths_set_order_is_fine(self, tmp_path):
        findings = _check(tmp_path, """\
            def pick():
                pending = {1, 2, 3}
                return next(iter(pending))
        """, relpath=BENCH_PATH)
        assert findings == []
