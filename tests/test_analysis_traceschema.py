"""TRACE: trace-event schema drift, driven on fixture trees.

The registry fixture mirrors :mod:`repro.obs.schema`'s shape -- literal
``_event(...)`` assignments the checker parses statically.
"""

from repro.analysis import traceschema
from repro.analysis.core import load_modules

from conftest import write_tree

REGISTRY = """\
    ENVELOPE_KEYS = frozenset({"seq", "ts", "event", "worker"})

    def _event(name, required=(), optional=(), allow_extra=False,
               shared=False):
        return name

    ROUND_DONE = _event("round_done", required=("elapsed", "paths"),
                        optional=("queues",), shared=True)
    BUG_SEEN = _event("bug_seen", optional=("kind",))
    FREEFORM = _event("freeform", allow_extra=True)
"""


def _modules(tmp_path, emitter_source, registry=REGISTRY):
    files = {"src/repro/cluster/coord.py": emitter_source}
    if registry is not None:
        files["src/repro/obs/schema.py"] = registry
    root = write_tree(tmp_path, files)
    modules, parse_findings = load_modules([root])
    assert not parse_findings
    return modules


class TestRegistryParsing:
    def test_events_constants_and_envelope(self, tmp_path):
        registry = traceschema.parse_registry(_modules(tmp_path, "x = 1"))
        assert set(registry.events) == {"round_done", "bug_seen", "freeform"}
        assert registry.constants["ROUND_DONE"] == "round_done"
        assert registry.events["round_done"].required == {"elapsed", "paths"}
        assert registry.events["round_done"].shared
        assert registry.events["freeform"].allow_extra
        assert registry.envelope == {"seq", "ts", "event", "worker"}

    def test_missing_registry_with_emit_sites_is_trace000(self, tmp_path):
        modules = _modules(tmp_path, """\
            class C:
                def f(self):
                    self.tracer.emit("round_done", elapsed=1.0, paths=3)
        """, registry=None)
        findings = traceschema.check(modules)
        assert [f.checker for f in findings] == ["TRACE000"]


class TestEmitSites:
    def test_conforming_emits_are_clean(self, tmp_path):
        modules = _modules(tmp_path, """\
            from repro.obs.schema import ROUND_DONE

            class Coordinator:
                def round_done(self, tracer):
                    tracer.emit(ROUND_DONE, elapsed=1.0, paths=3,
                                queues=[1, 2], worker=0)
                    self.tracer.emit("bug_seen")
                    self.tracer.emit("freeform", anything=1, goes=2)
        """)
        assert traceschema.check(modules) == []

    def test_unregistered_event_is_trace001(self, tmp_path):
        modules = _modules(tmp_path, """\
            class C:
                def f(self):
                    self.tracer.emit("round_compleet", elapsed=1.0, paths=1)
        """)
        findings = traceschema.check(modules)
        assert [f.checker for f in findings] == ["TRACE001"]
        assert "round_compleet" in findings[0].message
        assert findings[0].context == "C.f"

    def test_undeclared_key_is_trace002_backend_drift(self, tmp_path):
        # The classic drift: one backend renames a key the others still use.
        modules = _modules(tmp_path, """\
            class C:
                def f(self):
                    self.tracer.emit("bug_seen", kinds_found="overflow")
        """)
        findings = traceschema.check(modules)
        assert [f.checker for f in findings] == ["TRACE002"]
        assert "kinds_found" in findings[0].message

    def test_missing_required_key_is_trace003(self, tmp_path):
        modules = _modules(tmp_path, """\
            class C:
                def f(self):
                    self.tracer.emit("round_done", elapsed=2.5)
        """)
        findings = traceschema.check(modules)
        assert [f.checker for f in findings] == ["TRACE003"]
        assert "'paths'" in findings[0].message

    def test_dynamic_payload_on_closed_schema_is_trace004(self, tmp_path):
        modules = _modules(tmp_path, """\
            class C:
                def f(self, extras):
                    self.tracer.emit("round_done", **extras)
                    self.tracer.emit("freeform", **extras)
        """)
        findings = traceschema.check(modules)
        assert [f.checker for f in findings] == ["TRACE004"]  # freeform is open

    def test_constant_attribute_resolves_through_the_registry(self, tmp_path):
        modules = _modules(tmp_path, """\
            from repro.obs import schema as trace_schema

            class C:
                def f(self):
                    self.tracer.emit(trace_schema.ROUND_DONE, elapsed=1.0,
                                     paths=2)
                    self.tracer.emit(trace_schema.NO_SUCH_EVENT, a=1)
        """)
        findings = traceschema.check(modules)
        assert [f.checker for f in findings] == ["TRACE001"]
        assert "NO_SUCH_EVENT" in findings[0].message

    def test_dynamic_event_name_is_skipped(self, tmp_path):
        # Tracer.ingest re-emits forwarded events under a runtime name.
        modules = _modules(tmp_path, """\
            class C:
                def f(self, name, payload):
                    self.tracer.emit(name, **payload)
        """)
        assert traceschema.check(modules) == []

    def test_envelope_keys_are_legal_on_any_event(self, tmp_path):
        modules = _modules(tmp_path, """\
            class C:
                def f(self):
                    self.tracer.emit("bug_seen", kind="x", worker=3, seq=1)
        """)
        assert traceschema.check(modules) == []

    def test_non_tracer_emit_is_ignored(self, tmp_path):
        modules = _modules(tmp_path, """\
            class C:
                def f(self):
                    self.event_bus.emit("round_compleet", whatever=1)
        """)
        assert traceschema.check(modules) == []
