"""Tests for the engine's division-by-zero detector."""

from repro import lang as L
from repro.engine import BugKind
from repro.testing import SymbolicTest


def run_program(*main_body, posix=False):
    program = L.program("p", L.func("main", [], *main_body))
    return SymbolicTest("t", program, use_posix_model=posix).run_single()


class TestDivisionByZero:
    def test_concrete_zero_divisor_is_a_bug(self):
        result = run_program(
            L.decl("x", 0),
            L.ret(L.div(10, L.var("x"))),
        )
        assert any(b.kind == BugKind.DIVISION_BY_ZERO for b in result.bugs)

    def test_concrete_zero_modulus_is_a_bug(self):
        result = run_program(
            L.decl("x", 0),
            L.ret(L.mod(10, L.var("x"))),
        )
        assert any(b.kind == BugKind.DIVISION_BY_ZERO for b in result.bugs)

    def test_nonzero_divisor_is_fine(self):
        result = run_program(L.ret(L.div(10, 2)))
        assert not result.bugs
        assert result.test_cases[0].exit_code == 5

    def test_symbolic_divisor_constrained_to_zero_is_a_bug(self):
        result = run_program(
            L.decl("buf", L.call("cloud9_symbolic_buffer", 1, L.strconst("d"))),
            L.decl("d", L.index(L.var("buf"), 0)),
            L.if_(L.eq(L.var("d"), 0), [
                # On this branch the divisor is pinned to zero by the path
                # constraint even though it is still a symbolic expression.
                L.ret(L.div(100, L.var("d"))),
            ]),
            L.ret(0),
        )
        assert any(b.kind == BugKind.DIVISION_BY_ZERO for b in result.bugs)

    def test_symbolic_divisor_that_may_be_nonzero_divides(self):
        result = run_program(
            L.decl("buf", L.call("cloud9_symbolic_buffer", 1, L.strconst("d"))),
            L.decl("d", L.index(L.var("buf"), 0)),
            L.if_(L.gt(L.var("d"), 0), [L.ret(L.div(100, L.var("d")))]),
            L.ret(0),
        )
        assert not any(b.kind == BugKind.DIVISION_BY_ZERO for b in result.bugs)
        assert result.paths_completed >= 2

    def test_division_bug_produces_reproducing_test_case(self):
        result = run_program(
            L.decl("buf", L.call("cloud9_symbolic_buffer", 1, L.strconst("d"))),
            L.decl("d", L.index(L.var("buf"), 0)),
            L.if_(L.eq(L.var("d"), 0), [L.ret(L.div(100, L.var("d")))]),
            L.ret(1),
        )
        bugs = [b for b in result.bugs if b.kind == BugKind.DIVISION_BY_ZERO]
        assert bugs and bugs[0].test_case is not None
        assert bugs[0].test_case.inputs["d"] == b"\x00"
