"""Tests for the unified runner API: registry dispatch, limits round-trip
into every backend, RunResult adapters, and the strategy-propagation fix."""

import pytest

from repro import lang as L
from repro.api import ExplorationLimits, RunResult, available_backends
from repro.api.runner import (
    Runner,
    get_runner,
    register_runner,
    run_test,
    _RUNNERS,
)
from repro.cluster import ClusterConfig, StaticPartitionConfig
from repro.cluster.coordinator import ClusterResult
from repro.engine.executor import ExplorationResult
from repro.testing import SymbolicTest

from conftest import branchy_program, single_branch_program


def buggy_program() -> L.Program:
    """Two paths; the '!' path trips an assertion."""
    return L.program(
        "buggy",
        L.func(
            "main", [],
            L.decl("buf", L.call("cloud9_symbolic_buffer", 1, L.strconst("input"))),
            L.if_(L.eq(L.index(L.var("buf"), 0), ord("!")),
                  [L.assert_(L.eq(0, 1), "boom"), L.ret(1)],
                  [L.ret(0)]),
        ),
    )


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert set(available_backends()) >= {"single", "cluster", "static",
                                             "threaded"}

    def test_unknown_backend_is_an_error(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_runner("carrier-pigeon")
        test = SymbolicTest("t", single_branch_program())
        with pytest.raises(ValueError, match="unknown backend"):
            test.run(backend="carrier-pigeon")

    def test_duplicate_registration_rejected_unless_replaced(self):
        runner = get_runner("single")
        with pytest.raises(ValueError, match="already registered"):
            register_runner(runner)
        register_runner(runner, replace=True)  # no-op override is fine

    def test_custom_backend_dispatches(self):
        class EchoRunner:
            name = "echo-test-backend"

            def run(self, test, limits=None, **options):
                return RunResult(backend=self.name, test_name=test.name,
                                 raw=(limits, options))

        register_runner(EchoRunner())
        try:
            test = SymbolicTest("t", single_branch_program())
            result = test.run(backend="echo-test-backend", max_paths=3,
                              custom_knob=7)
            assert result.backend == "echo-test-backend"
            limits, options = result.raw
            assert limits.max_paths == 3           # folded out of the options
            assert options == {"custom_knob": 7}   # the rest passed through
            assert isinstance(EchoRunner(), Runner)
        finally:
            del _RUNNERS["echo-test-backend"]

    def test_run_test_function_matches_method(self):
        test = SymbolicTest("t", single_branch_program())
        assert (run_test(test).paths_completed
                == test.run().paths_completed == 2)


class TestBackendDispatch:
    def test_all_backends_explore_the_same_paths(self):
        expected = 9  # 3^2 paths of branchy_program(2)
        for backend, options in [("single", {}),
                                 ("cluster", {"workers": 3,
                                              "instructions_per_round": 50}),
                                 ("threaded", {"workers": 2,
                                               "instructions_per_round": 50}),
                                 ("static", {"workers": 2})]:
            test = SymbolicTest("t", branchy_program(2))
            result = test.run(backend=backend, **options)
            assert result.backend == backend
            assert result.paths_completed == expected, backend
            assert result.exhausted, backend

    def test_cluster_accepts_full_config_object(self):
        test = SymbolicTest("t", branchy_program(2))
        config = ClusterConfig(num_workers=2, instructions_per_round=40)
        result = test.run(backend="cluster", config=config)
        assert result.num_workers == 2
        assert result.raw.num_workers == 2

    def test_config_and_loose_options_are_mutually_exclusive(self):
        test = SymbolicTest("t", single_branch_program())
        with pytest.raises(TypeError, match="not both"):
            test.run(backend="cluster", config=ClusterConfig(), workers=4)

    def test_single_rejects_cluster_options(self):
        test = SymbolicTest("t", single_branch_program())
        with pytest.raises(TypeError, match="unknown options"):
            test.run(backend="single", workers=4)


class TestLimitsRoundTrip:
    def test_single_max_paths(self):
        test = SymbolicTest("t", branchy_program(2))
        result = test.run(limits=ExplorationLimits(max_paths=4))
        assert result.paths_completed == 4
        assert result.goal_reached and not result.exhausted

    def test_single_max_steps(self):
        test = SymbolicTest("t", branchy_program(2))
        result = test.run(limits=ExplorationLimits(max_steps=5))
        assert result.raw.steps == 5
        assert not result.exhausted

    def test_single_stop_on_first_bug(self):
        test = SymbolicTest("t", buggy_program())
        result = test.run(limits=ExplorationLimits(stop_on_first_bug=True))
        assert result.found_bug
        assert result.goal_reached

    def test_cluster_max_rounds(self):
        test = SymbolicTest("t", branchy_program(3))
        result = test.run(backend="cluster", workers=2,
                          instructions_per_round=10,
                          limits=ExplorationLimits(max_rounds=3))
        assert result.rounds_executed == 3
        assert not result.exhausted

    def test_cluster_coverage_target_marks_goal(self):
        test = SymbolicTest("t", branchy_program(2))
        result = test.run(backend="cluster", workers=2,
                          coverage_target=10.0)
        assert result.goal_reached
        assert result.coverage_percent >= 10.0

    def test_cluster_stop_on_first_bug(self):
        test = SymbolicTest("t", buggy_program())
        result = test.run(backend="cluster", workers=2,
                          instructions_per_round=50,
                          limits=ExplorationLimits(stop_on_first_bug=True))
        assert result.found_bug and result.goal_reached

    def test_cluster_max_instructions_budget(self):
        test = SymbolicTest("t", branchy_program(3))
        result = test.run(backend="cluster", workers=2,
                          instructions_per_round=10,
                          limits=ExplorationLimits(max_instructions=20))
        assert not result.exhausted
        assert not result.goal_reached  # a spent budget is not a goal

    def test_static_max_rounds(self):
        test = SymbolicTest("t", branchy_program(3))
        result = test.run(backend="static", workers=2,
                          instructions_per_round=10,
                          limits=ExplorationLimits(max_rounds=2))
        assert result.rounds_executed == 2

    def test_direct_kwargs_equal_limits_bundle(self):
        r1 = SymbolicTest("t", branchy_program(2)).run(max_paths=3)
        r2 = SymbolicTest("t", branchy_program(2)).run(
            limits=ExplorationLimits(max_paths=3))
        assert r1.paths_completed == r2.paths_completed == 3


class TestRunResultAdapters:
    def test_from_exploration_preserves_every_field(self):
        test = SymbolicTest("t", buggy_program())
        result = test.run()
        legacy = result.raw
        assert isinstance(legacy, ExplorationResult)
        assert result.test_name == "t"
        assert result.num_workers == 1
        assert result.paths_completed == legacy.paths_completed
        assert result.covered_lines == legacy.covered_lines
        assert result.line_count == legacy.line_count
        assert result.coverage_percent == legacy.coverage_percent
        assert result.bugs == legacy.bugs
        assert result.test_cases == legacy.test_cases
        assert result.useful_instructions == legacy.instructions_executed
        assert result.replay_instructions == 0
        assert result.total_instructions == legacy.instructions_executed
        assert result.exhausted == legacy.exhausted
        assert result.states_remaining == legacy.states_remaining
        assert result.wall_time == legacy.wall_time
        assert result.steps == legacy.steps
        assert result.bug_kinds() == legacy.bug_kinds()
        # single-engine runs have no cluster-only notions
        assert result.rounds_executed is None
        assert result.timeline is None
        assert result.worker_stats is None
        assert result.states_transferred is None
        assert result.rounds_to_coverage(10.0) is None
        # ... but solver-cache behavior is observable on every backend
        assert result.transfer_cost is None
        assert result.transfer_savings_ratio == 0.0
        assert result.cache_stats is not None
        assert result.cache_stats["constraint_cache_misses"] > 0
        assert 0.0 <= result.cache_stats["constraint_cache_hit_rate"] <= 1.0

    def test_from_cluster_preserves_every_field(self):
        test = SymbolicTest("t", branchy_program(2))
        result = test.run(backend="cluster", workers=3,
                          instructions_per_round=50)
        legacy = result.raw
        assert isinstance(legacy, ClusterResult)
        assert result.num_workers == legacy.num_workers == 3
        assert result.paths_completed == legacy.paths_completed
        assert result.covered_lines == legacy.covered_lines
        assert result.line_count == legacy.line_count
        assert result.coverage_percent == pytest.approx(legacy.coverage_percent)
        assert result.bugs == legacy.bugs
        assert result.test_cases == legacy.test_cases
        assert result.useful_instructions == legacy.total_useful_instructions
        assert result.replay_instructions == legacy.total_replay_instructions
        assert result.replay_overhead == pytest.approx(legacy.replay_overhead)
        assert (result.useful_instructions_per_worker
                == pytest.approx(legacy.useful_instructions_per_worker))
        assert result.exhausted == legacy.exhausted
        assert result.goal_reached == legacy.goal_reached
        assert result.rounds_executed == legacy.rounds_executed
        assert result.timeline is legacy.timeline
        assert result.worker_stats == legacy.worker_stats
        assert result.states_transferred == legacy.total_states_transferred
        assert result.bug_summaries() == legacy.bug_summaries()
        assert (result.rounds_to_coverage(1.0)
                == legacy.rounds_to_coverage(1.0))
        # rounds are virtual time, but real elapsed seconds are recorded too
        assert result.wall_time == legacy.wall_time >= 0.0
        # transfer cost and solver-cache counters are carried over
        assert result.transfer_cost is legacy.transfer_cost
        assert result.transfer_cost.jobs >= legacy.total_states_transferred
        assert result.cache_stats == legacy.cache_stats
        assert result.cache_stats["constraint_cache_misses"] > 0


class TestStrategyPropagation:
    def test_test_strategy_reaches_cluster_workers_by_default(self):
        """Regression: a non-default test strategy used to be silently
        dropped because ClusterConfig.strategy defaulted to 'interleaved'."""
        test = SymbolicTest("t", single_branch_program(), strategy="dfs")
        cluster = test.build_cluster(ClusterConfig(num_workers=2))
        assert all(w.strategy.name == "dfs" for w in cluster.workers)

    def test_test_strategy_reaches_static_cluster_workers(self):
        test = SymbolicTest("t", single_branch_program(), strategy="bfs")
        cluster = test.build_static_cluster(StaticPartitionConfig(num_workers=2))
        assert all(w.strategy.name == "bfs" for w in cluster.workers)

    def test_explicit_config_strategy_still_wins(self):
        test = SymbolicTest("t", single_branch_program(), strategy="dfs")
        cluster = test.build_cluster(ClusterConfig(num_workers=2,
                                                   strategy="bfs"))
        assert all(w.strategy.name == "bfs" for w in cluster.workers)

    def test_build_cluster_does_not_mutate_callers_config(self):
        config = ClusterConfig(num_workers=2)
        dfs_test = SymbolicTest("t", single_branch_program(), strategy="dfs")
        bfs_test = SymbolicTest("t", single_branch_program(), strategy="bfs")
        first = dfs_test.build_cluster(config)
        second = bfs_test.build_cluster(config)
        assert config.strategy is None  # reusable across tests
        assert all(w.strategy.name == "dfs" for w in first.workers)
        assert all(w.strategy.name == "bfs" for w in second.workers)

    def test_bare_cluster_falls_back_to_default_strategy(self):
        test = SymbolicTest("t", single_branch_program())
        cluster = test.build_cluster()
        assert all(w.strategy.name == "interleaved" for w in cluster.workers)

    def test_run_backend_propagates_strategy(self):
        test = SymbolicTest("t", branchy_program(2), strategy="dfs")
        result = test.run(backend="cluster", workers=2,
                          instructions_per_round=50)
        assert result.paths_completed == 9
