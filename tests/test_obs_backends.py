"""End-to-end observability: one trace per run on every backend, trace
integrity through faults, drain heartbeats, and dead-worker cache counters."""

import multiprocessing
import os
import signal
import time

import pytest

from repro.api import ExplorationLimits
from repro.distrib import specs
from repro.distrib.cluster import ProcessCloud9Cluster, ProcessClusterConfig
from repro.distrib.messages import (
    DrainStatusCommand,
    ExploreCommand,
    SeedCommand,
)
from repro.distrib.worker import DistribWorker
from repro.obs.report import analyze_trace
from repro.obs.trace import load_trace
from repro.testing.symbolic_test import SymbolicTest

from conftest import branchy_program

fork_available = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(
    not fork_available,
    reason="process-backed tests need the fork start method")

#: Every backend stamps round_completed with exactly these payload keys.
ROUND_KEYS = {"round", "elapsed", "coverage_percent", "covered_lines",
              "paths", "candidates", "workers", "useful", "replay",
              "transferred", "queues", "workers_detail"}
ENVELOPE_KEYS = {"seq", "ts", "event", "run"}


def _branchy_test():
    return SymbolicTest(name="obs-branchy", program=branchy_program(3),
                        use_posix_model=False)


def _assert_trace_shape(events, backend):
    names = [e["event"] for e in events]
    assert names.count("run_started") == 1, backend
    assert names.count("run_finished") == 1, backend
    assert names[0] == "run_started", backend
    assert names[-1] == "run_finished", backend
    rounds = [e for e in events if e["event"] == "round_completed"]
    assert rounds, backend
    for event in rounds:
        assert set(event) - ENVELOPE_KEYS == ROUND_KEYS, backend
    # Satellite: round indices strictly increase, seq strictly increases.
    indices = [e["round"] for e in rounds]
    assert indices == sorted(set(indices)), backend
    seqs = [e["seq"] for e in events]
    assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs), backend
    assert events[0]["backend"] == backend


class TestTracePerBackend:
    @pytest.mark.parametrize("backend", ["single", "cluster", "threaded"])
    def test_in_process_backends_trace(self, backend, tmp_path):
        path = tmp_path / f"{backend}.jsonl"
        options = {} if backend == "single" else {"workers": 2}
        result = _branchy_test().run(backend=backend, max_rounds=200,
                                     trace_path=str(path), **options)
        assert result.paths_completed > 0
        events = load_trace(str(path))
        _assert_trace_shape(events, backend)
        # The report reduces any backend's trace to the paper views.
        analysis = analyze_trace(events)
        assert analysis["coverage_over_time"]
        assert analysis["worker_utilization"]
        useful = sum(u["useful"]
                     for u in analysis["worker_utilization"].values())
        assert useful == result.useful_instructions

    @needs_fork
    @pytest.mark.parametrize("transport", ["mp", "tcp"])
    def test_process_backends_trace(self, transport, tmp_path):
        path = tmp_path / f"{transport}.jsonl"
        config = ProcessClusterConfig(
            num_workers=2, instructions_per_round=400, transport=transport,
            spawn_local_agents=(transport == "tcp"))
        cluster = ProcessCloud9Cluster("printf", {"format_length": 2},
                                       config=config)
        result = cluster.run(limits=ExplorationLimits(
            max_rounds=30, trace_path=str(path)))
        assert result.paths_completed > 0
        events = load_trace(str(path))
        _assert_trace_shape(events,
                            "tcp" if transport == "tcp" else "process")
        # Worker-side explore spans were forwarded and re-stamped.
        spans = [e for e in events if e["event"] == "span"]
        assert spans and all("wts" in e and "duration" in e for e in spans)

    def test_no_trace_file_without_trace_path(self, tmp_path):
        result = _branchy_test().run(backend="cluster", workers=2,
                                     max_rounds=50)
        assert result.paths_completed > 0
        assert list(tmp_path.iterdir()) == []


class TestElapsedTimeline:
    """Satellite: RoundSnapshot.elapsed on both cluster backends."""

    def test_in_process_cluster_elapsed(self):
        result = _branchy_test().run(backend="cluster", workers=2,
                                     max_rounds=50)
        series = result.timeline.elapsed_series()
        assert len(series) == result.rounds_executed
        assert all(b > a for a, b in zip(series, series[1:]))
        assert all(s.elapsed > 0.0 for s in result.timeline.snapshots)

    @needs_fork
    def test_process_cluster_elapsed(self):
        config = ProcessClusterConfig(num_workers=2,
                                      instructions_per_round=400)
        cluster = ProcessCloud9Cluster("printf", {"format_length": 2},
                                       config=config)
        result = cluster.run(limits=ExplorationLimits(max_rounds=20))
        series = result.timeline.elapsed_series()
        assert series and all(b > a for a, b in zip(series, series[1:]))


class TestDrainStatus:
    """Satellite: draining members answer a status-only heartbeat."""

    def test_worker_handles_drain_status_without_exploring(self):
        test = specs.resolve_test("printf", format_length=2)
        worker = DistribWorker(1, test)
        worker.handle(SeedCommand())
        worker.handle(ExploreCommand(budget=200))
        before = worker.worker.stats.useful_instructions
        reply = worker.handle(DrainStatusCommand())
        assert worker.worker.stats.useful_instructions == before
        assert reply.queue_length == worker.worker.queue_length
        assert reply.frontier is None
        with_frontier = worker.handle(DrainStatusCommand(report_frontier=True))
        assert with_frontier.frontier is not None

    @needs_fork
    def test_drain_is_traced(self, tmp_path):
        path = tmp_path / "drain.jsonl"
        config = ProcessClusterConfig(num_workers=3,
                                      instructions_per_round=300)
        cluster = ProcessCloud9Cluster("printf", {"format_length": 2},
                                       config=config)

        def hook(round_index, cl):
            if round_index == 2 and len(cl.live_worker_ids) == 3:
                cl.remove_worker(cl.live_worker_ids[-1])

        cluster.round_hook = hook
        result = cluster.run(limits=ExplorationLimits(
            max_rounds=60, trace_path=str(path)))
        assert result.workers_removed == 1
        names = [e["event"] for e in load_trace(str(path))]
        assert "worker_draining" in names
        assert "worker_left" in names


class TestFaultTracing:
    """Satellites: worker_died/worker_respawned pairing in the trace, and
    dead workers' cache counters surviving into the aggregate."""

    @needs_fork
    def test_sigkill_traced_and_cache_counters_aggregated(self, tmp_path):
        path = tmp_path / "kill.jsonl"
        config = ProcessClusterConfig(num_workers=2,
                                      instructions_per_round=200,
                                      respawn=True, reply_timeout=2.0)
        cluster = ProcessCloud9Cluster("printf", {"format_length": 2},
                                       config=config)
        state = {}

        def hook(round_index, cl):
            if round_index == 3 and "victim" not in state:
                victim = cl.handles[0]
                state["victim"] = victim.worker_id
                os.kill(victim.process.pid, signal.SIGKILL)

        cluster.round_hook = hook
        result = cluster.run(limits=ExplorationLimits(
            max_rounds=60, trace_path=str(path)))
        assert result.worker_failures == 1 and result.respawns == 1
        victim = state["victim"]

        events = load_trace(str(path))
        died = [e for e in events if e["event"] == "worker_died"]
        respawned = [e for e in events if e["event"] == "worker_respawned"]
        recovered = [e for e in events if e["event"] == "jobs_recovered"]
        assert [e["worker"] for e in died] == [victim]
        # Every death under respawn=True pairs with a respawn AND recovery.
        assert len(respawned) == len(died) == 1
        assert recovered and all(e["jobs"] >= 1 for e in recovered)
        # The respawn and recovery happen after the death in trace order.
        assert respawned[0]["seq"] > died[0]["seq"]
        assert all(e["seq"] > died[0]["seq"] for e in recovered)

        # Dead-worker cache counters: the victim never sent a FinalReply,
        # yet its piggybacked counters are in the aggregate.
        assert victim not in result.worker_stats
        failed = cluster._failed_cache_counters[victim]
        assert failed["solver_queries"] > 0
        assert result.cache_stats["solver_queries"] >= (
            failed["solver_queries"] + 1)


def _run_traced_cluster(trace_path):  # pragma: no cover - child process body
    test = SymbolicTest(name="obs-crash", program=branchy_program(4),
                        use_posix_model=False)
    test.run(backend="cluster", workers=2, max_rounds=100_000,
             instructions_per_round=20, trace_path=trace_path)


class TestCoordinatorCrash:
    """Satellite: the trace stays parseable after a coordinator SIGKILL."""

    @needs_fork
    def test_trace_parseable_after_sigkill(self, tmp_path):
        path = tmp_path / "crash.jsonl"
        ctx = multiprocessing.get_context("fork")
        child = ctx.Process(target=_run_traced_cluster, args=(str(path),))
        child.start()
        try:
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if path.exists() and path.stat().st_size > 2000:
                    break
                time.sleep(0.02)
            else:
                pytest.fail("trace never grew; cluster did not start")
            os.kill(child.pid, signal.SIGKILL)
        finally:
            child.join(timeout=10.0)
        # Simulate the torn final write a mid-line kill can leave.
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"seq": 99999, "event": "round_comp')
        events = load_trace(str(path))
        assert events and events[0]["event"] == "run_started"
        assert any(e["event"] == "round_completed" for e in events)
        assert "run_finished" not in {e["event"] for e in events}


class TestStatusServerLive:
    @needs_fork
    def test_status_readable_mid_run(self):
        from repro.obs.status import read_status

        config = ProcessClusterConfig(num_workers=2,
                                      instructions_per_round=300,
                                      status_listen="127.0.0.1:0")
        cluster = ProcessCloud9Cluster("printf", {"format_length": 2},
                                       config=config)
        seen = {}

        def hook(round_index, cl):
            if round_index == 2 and not seen:
                seen.update(read_status(cl.status_address) or {})

        cluster.round_hook = hook
        cluster.run(limits=ExplorationLimits(max_rounds=10))
        assert seen["backend"] == "process"
        assert seen["round"] >= 0 and seen["live_workers"] == 2
        assert cluster.status_address is None  # torn down with the run
