"""Unit tests for the uniform exploration limits (repro.api.limits)."""

import pytest

from repro.api.limits import UNLIMITED, ExplorationLimits, effective_limits


class TestExplorationLimits:
    def test_defaults_are_unbounded(self):
        limits = ExplorationLimits()
        assert limits.unbounded
        assert limits.max_paths is None and limits.max_rounds is None
        assert limits.stop_on_first_bug is False

    def test_validation_rejects_negative_budgets(self):
        with pytest.raises(ValueError):
            ExplorationLimits(max_paths=-1)
        with pytest.raises(ValueError):
            ExplorationLimits(max_wall_time=-0.5)
        with pytest.raises(ValueError):
            ExplorationLimits(coverage_target=120.0)

    def test_merged_overrides_only_given_fields(self):
        base = ExplorationLimits(max_paths=10, max_rounds=5)
        merged = base.merged(max_paths=20)
        assert merged.max_paths == 20
        assert merged.max_rounds == 5
        # frozen: the original is untouched
        assert base.max_paths == 10

    def test_merged_rejects_unknown_fields(self):
        with pytest.raises(TypeError):
            ExplorationLimits().merged(max_bananas=3)

    def test_pop_from_extracts_limit_fields_and_leaves_the_rest(self):
        options = {"max_paths": 7, "workers": 4, "coverage_target": 50.0}
        limits = ExplorationLimits.pop_from(options)
        assert limits.max_paths == 7
        assert limits.coverage_target == 50.0
        assert options == {"workers": 4}

    def test_pop_from_merges_over_base(self):
        base = ExplorationLimits(max_rounds=100, max_paths=1)
        options = {"max_paths": 9}
        limits = ExplorationLimits.pop_from(options, base=base)
        assert limits.max_paths == 9
        assert limits.max_rounds == 100

    def test_satisfied_by_goals(self):
        limits = ExplorationLimits(max_paths=5, coverage_target=80.0,
                                   stop_on_first_bug=True)
        assert limits.satisfied_by(5, 0.0, 0)
        assert limits.satisfied_by(0, 80.0, 0)
        assert limits.satisfied_by(0, 0.0, 1)
        assert not limits.satisfied_by(4, 79.9, 0)
        # budgets are not goals
        assert not ExplorationLimits(max_rounds=3).satisfied_by(100, 100.0, 5)

    def test_repr_names_only_set_fields(self):
        assert "unbounded" in repr(ExplorationLimits())
        text = repr(ExplorationLimits(max_paths=3))
        assert "max_paths=3" in text and "max_rounds" not in text

    def test_as_dict_round_trips(self):
        limits = ExplorationLimits(max_steps=1, max_wall_time=2.5,
                                   stop_on_first_bug=True)
        assert ExplorationLimits(**limits.as_dict()) == limits


class TestEffectiveLimits:
    def test_none_limits_yields_unlimited(self):
        assert effective_limits(None) == UNLIMITED

    def test_explicit_kwargs_win(self):
        base = ExplorationLimits(max_paths=10)
        assert effective_limits(base, max_paths=3).max_paths == 3

    def test_none_explicit_values_do_not_mask_base(self):
        base = ExplorationLimits(max_paths=10, stop_on_first_bug=True)
        merged = effective_limits(base, max_paths=None, stop_on_first_bug=False)
        assert merged.max_paths == 10
        assert merged.stop_on_first_bug is True
