"""Unit tests for expression simplification."""

import pytest

from repro.solver import expr as E
from repro.solver.simplify import conjuncts, simplify


X = E.bv_symbol("x", 8)
Y = E.bv_symbol("y", 8)


def test_constant_folding():
    expr = E.add(E.bv_const(3, 8), E.mul(E.bv_const(2, 8), E.bv_const(5, 8)))
    assert simplify(expr) == E.bv_const(13, 8)


def test_bool_constant_folding():
    expr = E.ult(E.bv_const(1, 8), E.bv_const(2, 8))
    assert simplify(expr) == E.TRUE


def test_add_zero_identity():
    assert simplify(E.add(X, E.bv_const(0, 8))) == X
    assert simplify(E.add(E.bv_const(0, 8), X)) == X


def test_sub_self_is_zero():
    assert simplify(E.sub(X, X)) == E.bv_const(0, 8)


def test_mul_identities():
    assert simplify(E.mul(X, E.bv_const(0, 8))) == E.bv_const(0, 8)
    assert simplify(E.mul(X, E.bv_const(1, 8))) == X


def test_and_or_identities():
    assert simplify(E.band(X, E.bv_const(0, 8))) == E.bv_const(0, 8)
    assert simplify(E.band(X, E.bv_const(0xFF, 8))) == X
    assert simplify(E.bor(X, E.bv_const(0, 8))) == X
    assert simplify(E.bor(X, E.bv_const(0xFF, 8))) == E.bv_const(0xFF, 8)


def test_xor_self_is_zero():
    assert simplify(E.bxor(X, X)) == E.bv_const(0, 8)


def test_comparison_on_same_operand():
    assert simplify(E.eq(X, X)) == E.TRUE
    assert simplify(E.ne(X, X)) == E.FALSE
    assert simplify(E.ult(X, X)) == E.FALSE
    assert simplify(E.ule(X, X)) == E.TRUE


def test_double_negation():
    cond = E.eq(X, E.bv_const(1, 8))
    assert simplify(E.logical_not(E.logical_not(cond))) == simplify(cond)


def test_negated_comparison_is_pushed_inward():
    cond = simplify(E.logical_not(E.eq(X, E.bv_const(1, 8))))
    assert cond.op == E.Op.NE


def test_negated_ult_becomes_ule_swapped():
    cond = simplify(E.logical_not(E.ult(X, Y)))
    assert cond.op == E.Op.ULE
    assert cond.args == (Y, X)


def test_bool_and_or_short_circuit_constants():
    cond = E.eq(X, E.bv_const(1, 8))
    assert simplify(E.logical_and(cond, E.TRUE)) == simplify(cond)
    assert simplify(E.logical_and(cond, E.FALSE)) == E.FALSE
    assert simplify(E.logical_or(cond, E.TRUE)) == E.TRUE
    assert simplify(E.logical_or(cond, E.FALSE)) == simplify(cond)


def test_ite_constant_condition():
    assert simplify(E.ite(E.TRUE, X, Y)) == X
    assert simplify(E.ite(E.FALSE, X, Y)) == Y


def test_ite_same_branches():
    cond = E.eq(X, E.bv_const(3, 8))
    assert simplify(E.ite(cond, Y, Y)) == Y


def test_ite_comparison_folding_eq_then_branch():
    """ite(c, 1, 0) != 0 folds back to c (the load-bearing rule)."""
    cond = E.ult(X, E.bv_const(10, 8))
    boolish = E.ite(cond, E.bv_const(1, 32), E.bv_const(0, 32))
    assert simplify(E.ne(boolish, E.bv_const(0, 32))) == simplify(cond)
    assert simplify(E.eq(boolish, E.bv_const(0, 32))).op == E.Op.ULE


def test_ite_comparison_folding_never_equal():
    cond = E.ult(X, E.bv_const(10, 8))
    boolish = E.ite(cond, E.bv_const(1, 32), E.bv_const(2, 32))
    assert simplify(E.eq(boolish, E.bv_const(7, 32))) == E.FALSE
    assert simplify(E.ne(boolish, E.bv_const(7, 32))) == E.TRUE


def test_extract_full_width_is_identity():
    assert simplify(E.extract(X, 7, 0)) == X


def test_zext_of_zext_collapses():
    expr = simplify(E.zext(E.zext(X, 16), 32))
    assert expr.op == E.Op.ZEXT
    assert expr.args[0] == X
    assert expr.width == 32


def test_shift_identities():
    assert simplify(E.shl(X, E.bv_const(0, 8))) == X
    assert simplify(E.lshr(E.bv_const(0, 8), X)) == E.bv_const(0, 8)


def test_simplification_preserves_semantics_spot_checks():
    exprs = [
        E.add(E.mul(X, E.bv_const(1, 8)), E.bv_const(0, 8)),
        E.bor(E.band(X, E.bv_const(0xFF, 8)), E.bv_const(0, 8)),
        E.ite(E.ule(X, X), X, Y),
    ]
    for expr in exprs:
        simplified = simplify(expr)
        for value in (0, 1, 7, 255):
            assert E.evaluate(expr, {X: value, Y: 3}) == \
                E.evaluate(simplified, {X: value, Y: 3})


def test_conjuncts_flattening():
    a = E.eq(X, E.bv_const(1, 8))
    b = E.ne(Y, E.bv_const(2, 8))
    c = E.ult(X, Y)
    combined = E.logical_and(E.logical_and(a, b), c)
    assert conjuncts(combined) == [a, b, c]


def test_conjuncts_of_non_conjunction():
    a = E.eq(X, E.bv_const(1, 8))
    assert conjuncts(a) == [a]
