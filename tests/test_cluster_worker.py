"""Unit tests for worker-level operation: frontier, job transfer, replay."""

from repro.cluster.jobs import JobTree
from repro.cluster.replay import replay_path
from repro.cluster.worker import Worker
from repro.engine import SymbolicExecutor
from repro.engine.tree import NodeStatus
from repro.posix import install_posix_model

from conftest import branchy_program


def make_worker(worker_id=1, buffer_size=2):
    program = branchy_program(buffer_size)

    def executor_factory():
        return SymbolicExecutor(program,
                                environment_installers=[install_posix_model])

    def state_factory(executor):
        return executor.make_initial_state()

    worker = Worker(worker_id, executor_factory(), state_factory)
    return worker


class TestSeedAndExplore:
    def test_seed_creates_root_candidate(self):
        worker = make_worker()
        worker.seed()
        assert worker.queue_length == 1
        assert worker.tree.root.is_candidate
        assert worker.tree.root.state is not None

    def test_exploration_completes_all_paths(self):
        worker = make_worker()
        worker.seed()
        while worker.has_work:
            worker.explore(1000)
        assert worker.paths_completed == 9
        assert worker.stats.useful_instructions > 0
        assert worker.stats.replay_instructions == 0

    def test_explore_respects_budget(self):
        worker = make_worker()
        worker.seed()
        consumed = worker.explore(5)
        assert consumed >= 5
        assert worker.has_work

    def test_reserved_worker_id_rejected(self):
        try:
            make_worker(worker_id=0)
            assert False
        except ValueError:
            pass


class TestJobTransfer:
    def _worker_with_frontier(self, min_candidates=3):
        worker = make_worker()
        worker.seed()
        while worker.queue_length < min_candidates and worker.has_work:
            worker.explore(5)
        return worker

    def test_export_marks_fences_and_shrinks_frontier(self):
        worker = self._worker_with_frontier()
        before = worker.queue_length
        job_tree = worker.export_jobs(2)
        assert len(job_tree) == 2
        assert worker.queue_length == before - 2
        assert len(worker.tree.fences()) == 2
        assert worker.stats.jobs_exported == 2

    def test_export_more_than_available(self):
        worker = self._worker_with_frontier()
        available = worker.queue_length
        job_tree = worker.export_jobs(available + 10)
        assert len(job_tree) == available

    def test_export_zero(self):
        worker = self._worker_with_frontier()
        assert len(worker.export_jobs(0)) == 0

    def test_import_creates_virtual_candidates(self):
        source = self._worker_with_frontier()
        job_tree = source.export_jobs(2)
        destination = make_worker(worker_id=2)
        imported = destination.import_jobs(JobTree.decode(job_tree.encode()))
        assert imported == 2
        assert destination.queue_length == 2
        assert all(node.is_virtual for node in destination.candidates.values())

    def test_frontiers_disjoint_after_transfer(self):
        source = self._worker_with_frontier()
        job_tree = source.export_jobs(2)
        destination = make_worker(worker_id=2)
        destination.import_jobs(job_tree)
        assert not (source.frontier_paths() & destination.frontier_paths())

    def test_transferred_work_completes_at_destination(self):
        source = self._worker_with_frontier()
        total_before = source.paths_completed
        job_tree = source.export_jobs(2)
        destination = make_worker(worker_id=2)
        destination.import_jobs(job_tree)
        while source.has_work:
            source.explore(1000)
        while destination.has_work:
            destination.explore(1000)
        # Together the two workers complete exactly the whole tree.
        assert source.paths_completed + destination.paths_completed == 9
        assert destination.stats.replay_instructions > 0
        assert destination.stats.replays >= 1


class TestReplay:
    def test_replay_reconstructs_state(self):
        source = make_worker()
        source.seed()
        while source.queue_length < 2 and source.has_work:
            source.explore(5)
        node = max(source.candidates.values(), key=lambda n: len(n.path_from_root()))
        path = node.path_from_root()
        assert path, "need a non-root candidate for this test"

        destination = make_worker(worker_id=2)
        outcome = replay_path(destination.executor, destination.state_factory, path)
        assert outcome.succeeded
        assert outcome.state is not None and outcome.state.is_running
        assert outcome.instructions > 0

    def test_replay_divergent_path_reports_broken(self):
        destination = make_worker(worker_id=2)
        outcome = replay_path(destination.executor, destination.state_factory,
                              [0] * 50)
        assert outcome.broken
        assert outcome.reason

    def test_worker_replay_of_imported_job_makes_it_explorable(self):
        source = make_worker()
        source.seed()
        while source.queue_length < 3 and source.has_work:
            source.explore(5)
        job_tree = source.export_jobs(1)
        destination = make_worker(worker_id=2)
        destination.import_jobs(job_tree)
        destination.explore(10_000)
        assert destination.stats.replays == 1
        assert destination.stats.broken_replays == 0
