"""DISP dispatch exhaustiveness, CORE hook contracts, PROTO004 semver lock."""

import json
from pathlib import Path

from repro.analysis import cli

from conftest import write_tree


def _args(tmp_path, *extra):
    return [*extra, "--baseline", str(tmp_path / "analysis_baseline.json"),
            "--lock", str(tmp_path / "protocol.lock.json")]


class TestDispatch:
    FILES = {
        "src/repro/distrib/messages.py": """\
            from dataclasses import dataclass

            @dataclass
            class PingCommand:
                nonce: int

            @dataclass
            class PongReply:
                nonce: int
        """,
        "src/repro/distrib/worker.py": """\
            from repro.distrib.messages import PingCommand, PongReply

            def handle(command):
                if isinstance(command, PingCommand):
                    return PongReply(nonce=command.nonce)
                raise TypeError(command)

            def read_reply(reply):
                if isinstance(reply, PongReply):
                    return reply.nonce
                raise TypeError(reply)
        """,
    }

    def test_fully_handled_tree_is_green(self, tmp_path):
        root = write_tree(tmp_path, self.FILES)
        assert cli.main(_args(tmp_path, root, "--select", "DISP")) == 0

    def test_unhandled_message_fails(self, tmp_path, capsys):
        partial = dict(self.FILES)
        partial["src/repro/distrib/worker.py"] = """\
            from repro.distrib.messages import PingCommand

            def handle(command):
                if isinstance(command, PingCommand):
                    return "pong"
                raise TypeError(command)
        """
        root = write_tree(tmp_path, partial)
        assert cli.main(_args(tmp_path, root, "--select", "DISP")) == 1
        out = capsys.readouterr().out
        assert "[DISP001]" in out
        assert "PongReply" in out

    def test_unregistered_arm_is_dead_code(self, tmp_path, capsys):
        grown = dict(self.FILES)
        grown["src/repro/distrib/worker.py"] = """\
            from repro.distrib.messages import (
                GhostCommand,
                PingCommand,
                PongReply,
            )

            def handle(command):
                if isinstance(command, PingCommand):
                    return PongReply(nonce=command.nonce)
                if isinstance(command, GhostCommand):
                    return None
                raise TypeError(command)

            def read_reply(reply):
                if isinstance(reply, PongReply):
                    return reply.nonce
                raise TypeError(reply)
        """
        root = write_tree(tmp_path, grown)
        assert cli.main(_args(tmp_path, root, "--select", "DISP")) == 1
        out = capsys.readouterr().out
        assert "[DISP002]" in out
        assert "GhostCommand" in out

    def test_message_only_tree_stays_quiet(self, tmp_path):
        root = write_tree(tmp_path,
                          {"src/repro/distrib/messages.py":
                           self.FILES["src/repro/distrib/messages.py"]})
        assert cli.main(_args(tmp_path, root, "--select", "DISP")) == 0


class TestHookContract:
    CORE = """\
        def backend_hook(method):
            return method

        class CoordinatorCore:
            def run(self):
                self._advance()
                return self._explore_phase()

            def _advance(self):
                return 1

            @backend_hook
            def _explore_phase(self):
                raise NotImplementedError
    """

    def _tree(self, tmp_path, backend):
        return write_tree(tmp_path, {
            "src/repro/cluster/core.py": self.CORE,
            "src/repro/cluster/backend.py": backend,
        })

    def test_conforming_backend_is_green(self, tmp_path):
        root = self._tree(tmp_path, """\
            from repro.cluster.core import CoordinatorCore

            class ThreadBackend(CoordinatorCore):
                def _explore_phase(self):
                    return 2
        """)
        assert cli.main(_args(tmp_path, root, "--select", "CORE")) == 0

    def test_shadowing_a_core_owned_method_fails(self, tmp_path, capsys):
        root = self._tree(tmp_path, """\
            from repro.cluster.core import CoordinatorCore

            class ThreadBackend(CoordinatorCore):
                def _explore_phase(self):
                    return 2

                def _advance(self):
                    return 3
        """)
        assert cli.main(_args(tmp_path, root, "--select", "CORE")) == 1
        out = capsys.readouterr().out
        assert "[CORE002]" in out
        assert "_advance" in out

    def test_missing_abstract_hook_fails(self, tmp_path, capsys):
        root = self._tree(tmp_path, """\
            from repro.cluster.core import CoordinatorCore

            class ThreadBackend(CoordinatorCore):
                def setup(self):
                    return None
        """)
        assert cli.main(_args(tmp_path, root, "--select", "CORE")) == 1
        out = capsys.readouterr().out
        assert "[CORE001]" in out
        assert "_explore_phase" in out

    def test_protocol_claim_without_member_fails(self, tmp_path, capsys):
        root = write_tree(tmp_path, {"src/repro/cluster/member.py": """\
            from typing import Protocol

            class Member(Protocol):
                worker_id: int

                def drain(self):
                    ...

            class BadMember(Member):
                def drain(self):
                    return []
        """})
        assert cli.main(_args(tmp_path, root, "--select", "CORE")) == 1
        out = capsys.readouterr().out
        assert "[CORE003]" in out
        assert "worker_id" in out


class TestSemverLock:
    V1 = {
        "src/repro/distrib/messages.py": """\
            from dataclasses import dataclass

            @dataclass
            class PingCommand:
                nonce: int
        """,
        "src/repro/net/transport.py": """\
            PROTOCOL_VERSION = 1
            PROTOCOL_COMPAT_VERSION = 1
        """,
    }

    RETYPED = """\
        from dataclasses import dataclass

        @dataclass
        class PingCommand:
            nonce: str
    """

    ADDITIVE = """\
        from dataclasses import dataclass

        @dataclass
        class PingCommand:
            nonce: int
            urgent: bool = False
    """

    def _bump(self, messages_source, version=2, compat=1):
        grown = dict(self.V1)
        grown["src/repro/distrib/messages.py"] = messages_source
        grown["src/repro/net/transport.py"] = (
            "PROTOCOL_VERSION = %d\nPROTOCOL_COMPAT_VERSION = %d\n"
            % (version, compat))
        return grown

    def test_breaking_change_at_compatible_bump_fails(self, tmp_path, capsys):
        root = write_tree(tmp_path, self.V1)
        assert cli.main(_args(tmp_path, root, "--update-lock")) == 0
        capsys.readouterr()
        # Bump to v2 while still admitting v1 agents, but retype a field --
        # a v1 agent's pickle no longer matches.
        write_tree(tmp_path, self._bump(self.RETYPED))
        assert cli.main(_args(tmp_path, root)) == 1
        out = capsys.readouterr().out
        assert "[PROTO004]" in out
        assert "compat floor 1" in out

    def test_update_lock_refuses_the_breaking_compatible_bump(
            self, tmp_path, capsys):
        root = write_tree(tmp_path, self.V1)
        assert cli.main(_args(tmp_path, root, "--update-lock")) == 0
        capsys.readouterr()
        write_tree(tmp_path, self._bump(self.RETYPED))
        assert cli.main(_args(tmp_path, root, "--update-lock")) == 1
        err = capsys.readouterr().err
        assert "refusing" in err
        assert "PROTO004" in err

    def test_additive_bump_passes_and_tags_since(self, tmp_path, capsys):
        root = write_tree(tmp_path, self.V1)
        assert cli.main(_args(tmp_path, root, "--update-lock")) == 0
        write_tree(tmp_path, self._bump(self.ADDITIVE))
        assert cli.main(_args(tmp_path, root, "--update-lock")) == 0
        capsys.readouterr()
        lock = json.loads((tmp_path / "protocol.lock.json")
                          .read_text(encoding="utf-8"))
        assert lock["format"] == 2
        assert lock["compat_version"] == 1
        entry = lock["messages"]["repro.distrib.messages.PingCommand"]
        fields = {f["name"]: f for f in entry["fields"]}
        assert fields["urgent"]["since"] == 2
        assert "since" not in fields["nonce"]
        assert cli.main(_args(tmp_path, root)) == 0

    def test_advancing_the_floor_folds_since_tags(self, tmp_path):
        root = write_tree(tmp_path, self.V1)
        assert cli.main(_args(tmp_path, root, "--update-lock")) == 0
        write_tree(tmp_path, self._bump(self.ADDITIVE))
        assert cli.main(_args(tmp_path, root, "--update-lock")) == 0
        # Dropping v1 agents: the since tag has served its purpose.
        write_tree(tmp_path, self._bump(self.ADDITIVE, version=2, compat=2))
        assert cli.main(_args(tmp_path, root, "--update-lock")) == 0
        lock = json.loads((tmp_path / "protocol.lock.json")
                          .read_text(encoding="utf-8"))
        entry = lock["messages"]["repro.distrib.messages.PingCommand"]
        fields = {f["name"]: f for f in entry["fields"]}
        assert "since" not in fields["urgent"]

    def test_floor_above_version_is_always_wrong(self, tmp_path, capsys):
        root = write_tree(tmp_path, self._bump(
            self.V1["src/repro/distrib/messages.py"], version=2, compat=3))
        assert cli.main(_args(tmp_path, root, "--select", "PROTO")) == 1
        out = capsys.readouterr().out
        assert "[PROTO004]" in out
        assert "can never pass" in out


class TestShippedLockIsSemver:
    def test_committed_lock_is_format_2_and_floor_is_sane(self):
        repo = Path(__file__).resolve().parent.parent
        lock = json.loads((repo / "protocol.lock.json")
                          .read_text(encoding="utf-8"))
        assert lock["format"] == 2
        assert lock["compat_version"] <= lock["protocol_version"]
