"""Unit tests for the POSIX model: sockets, pipes, select polling."""

from repro import lang as L
from repro.engine import BugKind
from repro.testing import SymbolicTest


def run_program(*main_functions, entry_body=None, options=None, extra_funcs=()):
    program = L.program("p", *extra_funcs, L.func("main", [], *entry_body))
    test = SymbolicTest("t", program, options=options or {})
    return test.run_single()


class TestSocketPair:
    def test_data_flows_between_endpoints(self):
        result = run_program(entry_body=[
            L.decl("pair", L.call("malloc", 2)),
            L.expr_stmt(L.call("socketpair", L.var("pair"))),
            L.decl("a", L.index(L.var("pair"), 0)),
            L.decl("b", L.index(L.var("pair"), 1)),
            L.decl("msg", L.strconst("ping")),
            L.expr_stmt(L.call("write", L.var("a"), L.var("msg"), 4)),
            L.decl("buf", L.call("malloc", 4)),
            L.decl("n", L.call("read", L.var("b"), L.var("buf"), 4)),
            L.if_(L.ne(L.var("n"), 4), [L.ret(100)]),
            L.ret(L.index(L.var("buf"), 0)),
        ])
        assert result.test_cases[0].exit_code == ord("p")

    def test_read_after_peer_close_returns_eof(self):
        result = run_program(entry_body=[
            L.decl("pair", L.call("malloc", 2)),
            L.expr_stmt(L.call("socketpair", L.var("pair"))),
            L.decl("a", L.index(L.var("pair"), 0)),
            L.decl("b", L.index(L.var("pair"), 1)),
            L.expr_stmt(L.call("close", L.var("a"))),
            L.decl("buf", L.call("malloc", 4)),
            L.ret(L.call("read", L.var("b"), L.var("buf"), 4)),
        ])
        assert result.test_cases[0].exit_code == 0

    def test_write_after_peer_close_fails(self):
        result = run_program(entry_body=[
            L.decl("pair", L.call("malloc", 2)),
            L.expr_stmt(L.call("socketpair", L.var("pair"))),
            L.decl("a", L.index(L.var("pair"), 0)),
            L.decl("b", L.index(L.var("pair"), 1)),
            L.expr_stmt(L.call("close", L.var("b"))),
            L.decl("msg", L.strconst("x")),
            L.ret(L.call("write", L.var("a"), L.var("msg"), 1)),
        ])
        assert result.test_cases[0].exit_code == 0xFFFFFFFF

    def test_blocking_read_deadlocks_without_writer(self):
        result = run_program(entry_body=[
            L.decl("pair", L.call("malloc", 2)),
            L.expr_stmt(L.call("socketpair", L.var("pair"))),
            L.decl("a", L.index(L.var("pair"), 0)),
            L.decl("buf", L.call("malloc", 4)),
            L.ret(L.call("read", L.var("a"), L.var("buf"), 4)),
        ])
        assert any(b.kind == BugKind.DEADLOCK for b in result.bugs)


class TestListenConnectAccept:
    def test_connection_roundtrip(self):
        server_fn = L.func(
            "server", ["listen_fd"],
            L.decl("conn", L.call("accept", L.var("listen_fd"))),
            L.decl("buf", L.call("malloc", 2)),
            L.expr_stmt(L.call("read", L.var("conn"), L.var("buf"), 2)),
            L.decl("reply", L.call("malloc", 1)),
            L.store(L.var("reply"), 0, L.add(L.index(L.var("buf"), 0), 1)),
            L.expr_stmt(L.call("write", L.var("conn"), L.var("reply"), 1)),
            L.ret(0),
        )
        result = run_program(extra_funcs=[server_fn], entry_body=[
            L.decl("lfd", L.call("socket", 1, 1)),
            L.expr_stmt(L.call("bind", L.var("lfd"), 8080)),
            L.expr_stmt(L.call("listen", L.var("lfd"), 4)),
            L.decl("t", L.call("pthread_create", L.strconst("server"), L.var("lfd"))),
            L.decl("cfd", L.call("socket", 1, 1)),
            L.decl("rc", L.call("connect", L.var("cfd"), 8080)),
            L.if_(L.ne(L.var("rc"), 0), [L.ret(100)]),
            L.decl("msg", L.strconst("A")),
            L.expr_stmt(L.call("write", L.var("cfd"), L.var("msg"), 1)),
            L.decl("buf", L.call("malloc", 1)),
            L.expr_stmt(L.call("read", L.var("cfd"), L.var("buf"), 1)),
            L.ret(L.index(L.var("buf"), 0)),
        ])
        assert not result.bugs
        assert result.test_cases[0].exit_code == ord("A") + 1

    def test_connect_to_unbound_port_refused(self):
        result = run_program(entry_body=[
            L.decl("cfd", L.call("socket", 1, 1)),
            L.ret(L.call("connect", L.var("cfd"), 9999)),
        ])
        assert result.test_cases[0].exit_code == 0xFFFFFFFF

    def test_bind_same_port_twice_fails(self):
        result = run_program(entry_body=[
            L.decl("a", L.call("socket", 1, 2)),
            L.decl("b", L.call("socket", 1, 2)),
            L.expr_stmt(L.call("bind", L.var("a"), 53)),
            L.ret(L.call("bind", L.var("b"), 53)),
        ])
        assert result.test_cases[0].exit_code == 0xFFFFFFFF


class TestUdp:
    def test_sendto_recvfrom_preserves_datagram_boundary(self):
        result = run_program(entry_body=[
            L.decl("srv", L.call("socket", 1, 2)),
            L.expr_stmt(L.call("bind", L.var("srv"), 11211)),
            L.decl("cli", L.call("socket", 1, 2)),
            L.decl("d1", L.strconst("abc")),
            L.decl("d2", L.strconst("de")),
            L.expr_stmt(L.call("sendto", L.var("cli"), L.var("d1"), 3, 11211)),
            L.expr_stmt(L.call("sendto", L.var("cli"), L.var("d2"), 2, 11211)),
            L.decl("buf", L.call("malloc", 8)),
            L.decl("n1", L.call("recvfrom", L.var("srv"), L.var("buf"), 8)),
            L.decl("n2", L.call("recvfrom", L.var("srv"), L.var("buf"), 8)),
            L.ret(L.add(L.mul(L.var("n1"), 10), L.var("n2"))),
        ])
        assert result.test_cases[0].exit_code == 32

    def test_sendto_unbound_port_fails(self):
        result = run_program(entry_body=[
            L.decl("cli", L.call("socket", 1, 2)),
            L.decl("d", L.strconst("x")),
            L.ret(L.call("sendto", L.var("cli"), L.var("d"), 1, 5353)),
        ])
        assert result.test_cases[0].exit_code == 0xFFFFFFFF


class TestPipes:
    def test_pipe_roundtrip(self):
        result = run_program(entry_body=[
            L.decl("fds", L.call("malloc", 2)),
            L.expr_stmt(L.call("pipe", L.var("fds"))),
            L.decl("r", L.index(L.var("fds"), 0)),
            L.decl("w", L.index(L.var("fds"), 1)),
            L.decl("msg", L.strconst("z")),
            L.expr_stmt(L.call("write", L.var("w"), L.var("msg"), 1)),
            L.decl("buf", L.call("malloc", 1)),
            L.expr_stmt(L.call("read", L.var("r"), L.var("buf"), 1)),
            L.ret(L.index(L.var("buf"), 0)),
        ])
        assert result.test_cases[0].exit_code == ord("z")


class TestSelect:
    def test_select_reports_ready_descriptor(self):
        result = run_program(entry_body=[
            L.decl("pair", L.call("malloc", 2)),
            L.expr_stmt(L.call("socketpair", L.var("pair"))),
            L.decl("a", L.index(L.var("pair"), 0)),
            L.decl("b", L.index(L.var("pair"), 1)),
            L.decl("msg", L.strconst("m")),
            L.expr_stmt(L.call("write", L.var("a"), L.var("msg"), 1)),
            L.decl("readset", L.call("malloc", 1)),
            L.store(L.var("readset"), 0, L.var("b")),
            L.ret(L.call("select", L.var("readset"), 1, 0, 0, 1)),
        ])
        assert result.test_cases[0].exit_code == 1  # bit 0 set

    def test_select_polling_returns_zero_when_nothing_ready(self):
        result = run_program(entry_body=[
            L.decl("pair", L.call("malloc", 2)),
            L.expr_stmt(L.call("socketpair", L.var("pair"))),
            L.decl("b", L.index(L.var("pair"), 1)),
            L.decl("readset", L.call("malloc", 1)),
            L.store(L.var("readset"), 0, L.var("b")),
            L.ret(L.call("select", L.var("readset"), 1, 0, 0, 0)),   # timeout 0
        ])
        assert result.test_cases[0].exit_code == 0

    def test_select_write_readiness(self):
        result = run_program(entry_body=[
            L.decl("pair", L.call("malloc", 2)),
            L.expr_stmt(L.call("socketpair", L.var("pair"))),
            L.decl("a", L.index(L.var("pair"), 0)),
            L.decl("writeset", L.call("malloc", 1)),
            L.store(L.var("writeset"), 0, L.var("a")),
            L.ret(L.call("select", 0, 0, L.var("writeset"), 1, 1)),
        ])
        assert result.test_cases[0].exit_code == 1 << 16
