"""Tests for constraint independence partitioning and incremental solving."""

import pytest

from repro.solver import expr as E
from repro.solver.independence import partition
from repro.solver.model import Model
from repro.solver.solver import Solver, SolverConfig, SolverResult


A = E.bv_symbol("a", 8)
B = E.bv_symbol("b", 8)
C = E.bv_symbol("c", 8)
D = E.bv_symbol("d", 8)


def lt(sym, value):
    return E.ult(sym, E.bv_const(value, 8))


class TestPartition:
    def test_disjoint_symbols_split(self):
        groups = partition([lt(A, 10), lt(B, 20)])
        assert [len(g) for g in groups] == [1, 1]

    def test_shared_symbol_joins(self):
        shared = E.eq(E.add(A, B), E.bv_const(5, 8))
        groups = partition([lt(A, 10), shared, lt(C, 3)])
        assert len(groups) == 2
        assert {lt(A, 10), shared} in [set(g) for g in groups]

    def test_transitive_connection(self):
        # a-b and b-c connect a, b, c into one group even though a and c
        # never appear together in a constraint.
        ab = E.ult(A, B)
        bc = E.ult(B, C)
        groups = partition([ab, bc, lt(D, 9)])
        assert len(groups) == 2
        assert set(groups[0]) == {ab, bc}

    def test_order_is_deterministic_and_stable(self):
        constraints = [lt(C, 5), lt(A, 9), E.ult(C, D), lt(B, 2)]
        groups = partition(constraints)
        # Groups ordered by first constituent; in-group query order kept.
        assert groups == [[lt(C, 5), E.ult(C, D)], [lt(A, 9)], [lt(B, 2)]]
        assert partition(constraints) == groups

    def test_symbol_free_constraints_are_singletons(self):
        # Constants normally simplify away before partitioning, but the
        # partitioner must not merge unrelated constraints through them.
        const = E.eq(E.bv_const(1, 8), E.bv_const(1, 8))
        groups = partition([const, lt(A, 3), const])
        assert [len(g) for g in groups] == [1, 1, 1]

    def test_empty_input(self):
        assert partition([]) == []


class TestIndependentSolving:
    def test_merged_model_covers_all_groups(self):
        solver = Solver()
        constraints = [E.eq(A, E.bv_const(4, 8)), E.eq(B, E.bv_const(7, 8)),
                       E.eq(E.add(C, D), E.bv_const(9, 8))]
        result, model = solver.check(constraints)
        assert result == SolverResult.SAT
        assert model.satisfies(constraints)
        assert model.value_of(A) == 4 and model.value_of(B) == 7

    def test_groups_counted_per_query(self):
        solver = Solver()
        solver.check([lt(A, 5), lt(B, 5), lt(C, 5)])
        assert solver.stats.independence_groups == 3

    def test_unsat_group_refutes_query(self):
        solver = Solver()
        constraints = [lt(A, 200),
                       E.logical_and(lt(B, 10), E.ult(E.bv_const(20, 8), B))]
        assert not solver.is_satisfiable(constraints)
        assert solver.stats.unsat_queries == 1

    def test_incremental_query_resolves_only_new_group(self):
        solver = Solver()
        base = [lt(A, 5), lt(B, 5)]
        assert solver.is_satisfiable(base)
        solved_before = solver.stats.groups_solved
        # "Previous path constraint + one new branch" touching only C: the
        # a/b groups must be answered from the caches.
        assert solver.is_satisfiable(base + [E.eq(C, E.bv_const(3, 8))])
        assert solver.stats.groups_solved == solved_before + 1
        assert solver.stats.independence_hits >= 2

    def test_changed_group_resolves_fresh(self):
        solver = Solver()
        base = [lt(A, 50), lt(B, 5)]
        assert solver.is_satisfiable(base)
        # Narrowing the a-group changes only that group's key.
        narrowed = [lt(A, 50), E.ult(E.bv_const(20, 8), A), lt(B, 5)]
        solved_before = solver.stats.groups_solved
        assert solver.is_satisfiable(narrowed)
        assert solver.stats.groups_solved <= solved_before + 1

    def test_independence_off_records_no_group_counters(self):
        # With the layer disabled, the whole query is one group internally
        # but none of the independence counters move: the ablation must not
        # attribute plain cache hits to a disabled layer.
        solver = Solver(SolverConfig(use_independence=False))
        solver.check([lt(A, 5), lt(B, 5), lt(C, 5)])
        solver.check([lt(A, 5), lt(B, 5), lt(C, 5)])
        assert solver.stats.independence_groups == 0
        assert solver.stats.independence_hits == 0
        assert solver.stats.cache_hits > 0

    def test_group_cache_hit_cannot_poison_cross_group_merge(self):
        # A reused model may carry assignments for other groups' symbols;
        # cached group verdicts must be restricted to the group's own
        # symbols or a stale a=5 would overwrite a fresh a=3 in the merge.
        solver = Solver()
        r1, m1 = solver.check([E.eq(A, E.bv_const(5, 8)), lt(B, 10)])
        assert r1 == SolverResult.SAT and m1.value_of(A) == 5
        query = [E.eq(A, E.bv_const(3, 8)), lt(B, 10)]
        r2, m2 = solver.check(query)
        assert r2 == SolverResult.SAT
        assert m2.value_of(A) == 3
        assert m2.satisfies(query)

    def test_budget_starved_group_is_not_memoized_unknown(self):
        # The hard group drains the shared per-query budget and the easy
        # group's search starves; the easy group alone must still solve.
        solver = Solver(SolverConfig(max_search_steps=200))
        hard = [E.eq(E.mul(A, B), E.bv_const(143, 8)),
                E.ne(A, E.bv_const(1, 8)), E.ne(B, E.bv_const(1, 8)),
                E.ne(A, E.bv_const(143, 8)), E.ne(B, E.bv_const(143, 8))]
        easy = [E.logical_or(E.eq(C, E.bv_const(7, 8)),
                             E.eq(D, E.bv_const(9, 8)))]
        solver.check(hard + easy)
        result, model = solver.check(easy)
        assert result == SolverResult.SAT
        assert model.satisfies(easy)

    @pytest.mark.parametrize("use_independence", [True, False])
    def test_verdicts_agree_across_modes(self, use_independence):
        solver = Solver(SolverConfig(use_independence=use_independence))
        queries = [
            ([lt(A, 5), lt(B, 5)], SolverResult.SAT),
            ([E.eq(A, E.bv_const(1, 8)), E.eq(A, E.bv_const(2, 8)),
              lt(B, 9)], SolverResult.UNSAT),
            ([E.ult(A, B), E.ult(B, C), lt(C, 3),
              E.eq(D, E.bv_const(200, 8))], SolverResult.SAT),
            ([E.eq(E.add(A, B), E.bv_const(10, 8)), lt(A, 3),
              E.logical_and(lt(C, 4), E.ult(E.bv_const(4, 8), C))],
             SolverResult.UNSAT),
        ]
        for constraints, expected in queries:
            result, model = solver.check(constraints)
            assert result == expected
            if expected == SolverResult.SAT:
                assert model.satisfies(constraints)

    def test_group_hits_survive_reset_only_via_resolve(self):
        solver = Solver()
        constraints = [lt(A, 5), lt(B, 5)]
        solver.check(constraints)
        solver.reset_caches()
        solved_before = solver.stats.groups_solved
        solver.check(constraints)
        assert solver.stats.groups_solved > solved_before


class TestUnknownMemoization:
    HARD = [E.eq(E.mul(A, B), E.bv_const(143, 8)),
            E.ne(A, E.bv_const(1, 8)), E.ne(B, E.bv_const(1, 8)),
            E.ult(E.bv_const(100, 8), E.add(A, C))]

    def test_unknown_is_memoized(self):
        solver = Solver(SolverConfig(max_search_steps=1))
        assert solver.check(self.HARD)[0] == SolverResult.UNKNOWN
        steps_before = solver.stats.search_steps
        assert solver.check(self.HARD)[0] == SolverResult.UNKNOWN
        assert solver.stats.unknown_cache_hits == 1
        assert solver.stats.search_steps == steps_before
        assert solver.stats.unknown_queries == 2

    def test_unknown_group_memo_reused_by_superset_query(self):
        solver = Solver(SolverConfig(max_search_steps=1))
        assert solver.check(self.HARD)[0] == SolverResult.UNKNOWN
        solved_before = solver.stats.groups_solved
        # Same hard group plus an unrelated new branch: the hard group must
        # come from the unknown memo, not another budget-exhausting search.
        result, _ = solver.check(self.HARD + [E.eq(D, E.bv_const(1, 8))])
        assert result == SolverResult.UNKNOWN
        assert solver.stats.unknown_cache_hits >= 1
        assert solver.stats.groups_solved <= solved_before + 1

    def test_unknown_memo_is_bounded(self):
        solver = Solver(SolverConfig(max_search_steps=1,
                                     unknown_cache_capacity=2))
        for offset in range(4):
            query = [E.eq(E.mul(A, B), E.bv_const(143, 8)),
                     E.ne(A, E.bv_const(1, 8)), E.ne(B, E.bv_const(1, 8)),
                     E.ult(E.bv_const(100 + offset, 8), E.add(A, C))]
            solver.check(query)
        assert len(solver._unknown) <= 2

    def test_starved_query_not_memoized_and_retry_succeeds(self):
        # or(a==7, a==9) costs exactly 4 search steps (candidates 0, 255, 6,
        # 7).  With a budget of 5 the first group solves and leaves 1 step,
        # starving the identical-shaped second group.  The *query* must not
        # be memoized UNKNOWN: on retry the first group is a cache hit, the
        # second gets the full budget, and the query is SAT.
        solver = Solver(SolverConfig(max_search_steps=5))
        group_a = [E.logical_or(E.eq(A, E.bv_const(7, 8)),
                                E.eq(A, E.bv_const(9, 8)))]
        group_b = [E.logical_or(E.eq(B, E.bv_const(7, 8)),
                                E.eq(B, E.bv_const(9, 8)))]
        first, _ = solver.check(group_a + group_b)
        assert first == SolverResult.UNKNOWN
        retry, model = solver.check(group_a + group_b)
        assert retry == SolverResult.SAT
        assert model.satisfies(group_a + group_b)
        assert solver.stats.unknown_cache_hits == 0

    def test_unknown_still_reported_satisfiable(self):
        solver = Solver(SolverConfig(max_search_steps=1))
        assert solver.is_satisfiable(self.HARD)
        assert solver.is_satisfiable(self.HARD)  # memoized path

    def test_reset_caches_clears_unknown_memo(self):
        solver = Solver(SolverConfig(max_search_steps=1))
        solver.check(self.HARD)
        solver.reset_caches()
        solver.check(self.HARD)
        assert solver.stats.unknown_cache_hits == 0


class TestCountersPlumbing:
    def test_cache_counters_include_independence(self):
        solver = Solver()
        solver.check([lt(A, 5), lt(B, 5)])
        counters = solver.cache_counters()
        for key in ("independence_groups", "groups_solved",
                    "independence_hits", "unknown_cache_hits",
                    "solver_queries", "solver_search_steps"):
            assert key in counters
        assert counters["independence_groups"] == 2

    def test_stats_delta_since(self):
        solver = Solver()
        before = solver.stats.snapshot()
        solver.check([lt(A, 5)])
        delta = solver.stats.delta_since(before)
        assert delta["queries"] == 1
        assert delta["independence_groups"] == 1

    def test_recent_model_reuse_is_sound_for_partial_models(self):
        # Group-level models are partial; reusing one for another group must
        # still yield a true model (missing symbols default to 0).
        solver = Solver()
        solver.check([E.eq(A, E.bv_const(9, 8))])
        result, model = solver.check([lt(B, 10)])
        assert result == SolverResult.SAT
        assert model.satisfies([lt(B, 10)])

    def test_model_type(self):
        solver = Solver()
        _, model = solver.check([lt(A, 5), lt(B, 5)])
        assert isinstance(model, Model)
