"""CONC: blocking-under-lock, untimed receives, lock-order cycles."""

from repro.analysis import concurrency
from repro.analysis.core import load_modules

from conftest import write_tree


def _check(tmp_path, source, relpath="src/repro/net/transport_like.py"):
    root = write_tree(tmp_path, {relpath: source})
    modules, parse_findings = load_modules([root])
    assert not parse_findings
    return concurrency.check(modules)


class TestBlockingUnderLock:
    def test_sendall_under_lock_is_conc001(self, tmp_path):
        findings = _check(tmp_path, """\
            class Transport:
                def _sendall(self, data):
                    with self._send_lock:
                        self._sock.sendall(data)
        """)
        assert [f.checker for f in findings] == ["CONC001"]
        assert "sendall" in findings[0].message
        assert findings[0].context == "Transport._sendall"

    def test_sendall_outside_the_lock_is_clean(self, tmp_path):
        findings = _check(tmp_path, """\
            class Transport:
                def _sendall(self, data):
                    with self._send_lock:
                        frame = self.encode(data)
                    self._sock.sendall(frame)
        """)
        assert [f.checker for f in findings] == []

    def test_untimed_queue_get_under_lock_is_conc001(self, tmp_path):
        findings = _check(tmp_path, """\
            import threading

            class Pump:
                def __init__(self):
                    self._lock = threading.Lock()
                def drain(self):
                    with self._lock:
                        return self.inbox.get()
        """)
        assert [f.checker for f in findings] == ["CONC001"]

    def test_timed_queue_get_under_lock_is_clean(self, tmp_path):
        findings = _check(tmp_path, """\
            class Pump:
                def drain(self):
                    with self._lock:
                        return self.inbox.get(timeout=1.0)
        """)
        assert findings == []

    def test_untimed_join_and_sleep_under_lock(self, tmp_path):
        findings = _check(tmp_path, """\
            import time

            class Reaper:
                def stop(self):
                    with self._state_lock:
                        self.thread.join()
                        time.sleep(5)
        """)
        assert [f.checker for f in findings] == ["CONC001", "CONC001"]

    def test_lock_detected_via_threading_assignment(self, tmp_path):
        # `self._guard` has no "lock" in the name; detection comes from the
        # threading.Lock() assignment in __init__.
        findings = _check(tmp_path, """\
            import threading

            class Keeper:
                def __init__(self):
                    self._guard = threading.Lock()
                def pull(self, sock):
                    with self._guard:
                        return sock.recv(4096)
        """)
        assert [f.checker for f in findings] == ["CONC001"]

    def test_nested_def_does_not_inherit_the_held_lock(self, tmp_path):
        findings = _check(tmp_path, """\
            class Factory:
                def build(self):
                    with self._lock:
                        def later(sock):
                            return sock.recv(4096)
                        return later
        """)
        assert findings == []


class TestUntimedQueueGet:
    def test_bare_get_on_a_queueish_name_is_conc002(self, tmp_path):
        findings = _check(tmp_path, """\
            def worker_loop(command_queue):
                while True:
                    command = command_queue.get()
        """)
        assert [f.checker for f in findings] == ["CONC002"]
        assert "command_queue" in findings[0].message

    def test_get_with_timeout_is_clean(self, tmp_path):
        findings = _check(tmp_path, """\
            def worker_loop(command_queue):
                while True:
                    command = command_queue.get(timeout=1.0)
        """)
        assert findings == []

    def test_non_queue_receiver_get_is_ignored(self, tmp_path):
        findings = _check(tmp_path, """\
            def lookup(mapping, key):
                return mapping.get(key)
        """)
        assert findings == []


class TestLockOrderCycles:
    def test_opposite_acquisition_order_is_conc003(self, tmp_path):
        findings = _check(tmp_path, """\
            class State:
                def forward(self):
                    with self.alpha_lock:
                        with self.beta_lock:
                            pass
                def backward(self):
                    with self.beta_lock:
                        with self.alpha_lock:
                            pass
        """)
        cycles = [f for f in findings if f.checker == "CONC003"]
        assert len(cycles) == 1
        assert "alpha_lock" in cycles[0].message
        assert "beta_lock" in cycles[0].message

    def test_cycle_through_a_same_module_call_is_found(self, tmp_path):
        findings = _check(tmp_path, """\
            class State:
                def forward(self):
                    with self.alpha_lock:
                        self.notify()
                def notify(self):
                    with self.beta_lock:
                        pass
                def backward(self):
                    with self.beta_lock:
                        with self.alpha_lock:
                            pass
        """)
        cycles = [f for f in findings if f.checker == "CONC003"]
        assert len(cycles) == 1

    def test_consistent_global_order_is_clean(self, tmp_path):
        findings = _check(tmp_path, """\
            class State:
                def forward(self):
                    with self.alpha_lock:
                        with self.beta_lock:
                            pass
                def also_forward(self):
                    with self.alpha_lock:
                        with self.beta_lock:
                            pass
        """)
        assert [f.checker for f in findings] == []
