"""Unit tests for cooperative scheduling, schedule forking and hang detection."""

from repro import lang as L
from repro.engine import BugKind
from repro.engine.config import EngineConfig
from repro.engine.scheduler import (
    POLICY_FORK_ALL,
    POLICY_ROUND_ROBIN,
    CooperativeScheduler,
)

from conftest import make_executor


def two_thread_program(*worker_body):
    """main spawns one extra thread and yields; both update shared memory."""
    return L.program(
        "p",
        L.func("worker", ["shared"], *worker_body),
        L.func(
            "main", [],
            L.decl("shared", L.call("malloc", 4)),
            L.decl("tid", L.call("cloud9_thread_create", L.strconst("worker"),
                                 L.var("shared"))),
            L.expr_stmt(L.call("cloud9_thread_preempt")),
            L.ret(L.index(L.var("shared"), 0)),
        ),
    )


class TestCooperativeScheduling:
    def test_created_thread_runs_after_preempt(self):
        program = two_thread_program(
            L.store(L.var("shared"), 0, 11),
            L.ret(0),
        )
        result = make_executor(program).run()
        assert result.paths_completed == 1
        assert result.test_cases[0].exit_code == 11

    def test_thread_runs_atomically_until_preemption(self):
        # Without an explicit preemption in the worker, main resumes only
        # after the worker finished both stores.
        program = two_thread_program(
            L.store(L.var("shared"), 0, 1),
            L.store(L.var("shared"), 0, 2),
            L.ret(0),
        )
        result = make_executor(program).run()
        assert result.test_cases[0].exit_code == 2

    def test_sleep_and_notify_roundtrip(self):
        program = L.program(
            "p",
            L.func("waker", ["wlist"],
                   L.expr_stmt(L.call("cloud9_thread_notify", L.var("wlist"), 1)),
                   L.ret(0)),
            L.func(
                "main", [],
                L.decl("wlist", L.call("cloud9_get_wlist")),
                L.decl("t", L.call("cloud9_thread_create", L.strconst("waker"),
                                   L.var("wlist"))),
                L.expr_stmt(L.call("cloud9_thread_sleep", L.var("wlist"))),
                L.ret(42),
            ),
        )
        result = make_executor(program).run()
        assert result.paths_completed == 1
        assert not result.bugs
        assert result.test_cases[0].exit_code == 42

    def test_get_context_identifies_thread(self):
        program = L.program("p", L.func(
            "main", [], L.ret(L.call("cloud9_get_context"))))
        result = make_executor(program).run()
        assert result.test_cases[0].exit_code == 1 * 65536 + 0


class TestHangDetection:
    def test_deadlock_when_all_threads_sleep(self):
        program = L.program("p", L.func(
            "main", [],
            L.decl("wlist", L.call("cloud9_get_wlist")),
            L.expr_stmt(L.call("cloud9_thread_sleep", L.var("wlist"))),
            L.ret(0),
        ))
        result = make_executor(program).run()
        assert any(b.kind == BugKind.DEADLOCK for b in result.bugs)

    def test_deadlock_detection_can_be_disabled(self):
        program = L.program("p", L.func(
            "main", [],
            L.decl("wlist", L.call("cloud9_get_wlist")),
            L.expr_stmt(L.call("cloud9_thread_sleep", L.var("wlist"))),
            L.ret(0),
        ))
        config = EngineConfig(detect_deadlocks=False)
        result = make_executor(program, config=config).run()
        assert not result.bugs


class TestScheduleForking:
    def test_fork_all_explores_interleavings(self):
        # Two threads each write a different value; with schedule forking the
        # final value depends on the interleaving, so both outcomes appear.
        program = L.program(
            "p",
            L.func("worker", ["shared"],
                   L.store(L.var("shared"), 0, 7),
                   L.ret(0)),
            L.func(
                "main", [],
                L.decl("shared", L.call("malloc", 1)),
                L.store(L.var("shared"), 0, 3),
                L.decl("t", L.call("cloud9_thread_create", L.strconst("worker"),
                                   L.var("shared"))),
                L.expr_stmt(L.call("cloud9_thread_preempt")),
                L.store(L.var("shared"), 0, L.add(L.index(L.var("shared"), 0), 10)),
                L.ret(L.index(L.var("shared"), 0)),
            ),
        )
        config = EngineConfig(fork_on_schedule=True)
        result = make_executor(program, config=config).run()
        exit_codes = {t.exit_code for t in result.test_cases}
        assert result.paths_completed >= 2
        assert 17 in exit_codes      # worker ran before main's second store
        assert 13 in exit_codes      # main's second store ran first

    def test_round_robin_is_deterministic(self):
        program = two_thread_program(L.store(L.var("shared"), 0, 5), L.ret(0))
        results = [make_executor(program).run().test_cases[0].exit_code
                   for _ in range(2)]
        assert results[0] == results[1]


class TestSchedulerUnit:
    def test_decide_orders_round_robin(self):
        from repro.engine.state import ExecutionState
        from repro.lang.compiler import compile_program

        program = compile_program(two_thread_program(L.ret(0)))
        state = ExecutionState(program)
        state.create_main_process()
        extra = state.current_process.new_thread()
        extra.stack.append(state.current_thread.top.copy())
        scheduler = CooperativeScheduler(policy=POLICY_ROUND_ROBIN)
        decision = scheduler.decide(state)
        assert len(decision.choices) == 1

        forking = CooperativeScheduler(policy=POLICY_FORK_ALL)
        decision = forking.decide(state)
        assert len(decision.choices) == 2
