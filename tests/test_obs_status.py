"""The coordinator-side live status endpoint."""

import json
import socket

import pytest

from repro.obs.status import StatusServer, parse_status_address, read_status


class TestParseAddress:
    def test_host_port(self):
        assert parse_status_address("0.0.0.0:4850") == ("0.0.0.0", 4850)

    def test_bare_port_defaults_loopback(self):
        assert parse_status_address("4850") == ("127.0.0.1", 4850)

    def test_bad_port_raises(self):
        with pytest.raises(ValueError):
            parse_status_address("host:notaport")


class TestStatusServer:
    def test_serves_latest_snapshot(self):
        server = StatusServer("127.0.0.1:0")
        try:
            server.update({"round": 1, "coverage_percent": 10.0})
            server.update({"round": 2, "coverage_percent": 25.0})
            status = read_status(server.address)
            assert status["round"] == 2
            assert status["coverage_percent"] == 25.0
            assert status["updated"] >= 0.0  # staleness age rides along
        finally:
            server.close()

    def test_one_json_line_per_connection(self):
        """The wire protocol is healthz-style: connect, read one line, EOF."""
        server = StatusServer("127.0.0.1:0")
        try:
            server.update({"round": 7})
            with socket.create_connection(server.address, timeout=2.0) as sock:
                data = b""
                while True:
                    chunk = sock.recv(4096)
                    if not chunk:
                        break
                    data += chunk
            text = data.decode("utf-8")
            assert text.endswith("\n") and text.count("\n") == 1
            assert json.loads(text)["round"] == 7
        finally:
            server.close()

    def test_empty_snapshot_before_first_update(self):
        server = StatusServer("127.0.0.1:0")
        try:
            status = read_status(server.address)
            assert "updated" in status
        finally:
            server.close()

    def test_read_after_close_returns_none(self):
        server = StatusServer("127.0.0.1:0")
        address = server.address
        server.close()
        assert read_status(address, timeout=0.5) is None
