"""The coordinator-side live status endpoint."""

import json
import socket

import pytest

from repro.cluster import ClusterConfig, ThreadedCloud9Cluster
from repro.obs.status import StatusServer, parse_status_address, read_status
from repro.testing import SymbolicTest

from conftest import branchy_program


class TestParseAddress:
    def test_host_port(self):
        assert parse_status_address("0.0.0.0:4850") == ("0.0.0.0", 4850)

    def test_bare_port_defaults_loopback(self):
        assert parse_status_address("4850") == ("127.0.0.1", 4850)

    def test_bad_port_raises(self):
        with pytest.raises(ValueError):
            parse_status_address("host:notaport")


class TestStatusServer:
    def test_serves_latest_snapshot(self):
        server = StatusServer("127.0.0.1:0")
        try:
            server.update({"round": 1, "coverage_percent": 10.0})
            server.update({"round": 2, "coverage_percent": 25.0})
            status = read_status(server.address)
            assert status["round"] == 2
            assert status["coverage_percent"] == 25.0
            assert status["updated"] >= 0.0  # staleness age rides along
        finally:
            server.close()

    def test_one_json_line_per_connection(self):
        """The wire protocol is healthz-style: connect, read one line, EOF."""
        server = StatusServer("127.0.0.1:0")
        try:
            server.update({"round": 7})
            with socket.create_connection(server.address, timeout=2.0) as sock:
                data = b""
                while True:
                    chunk = sock.recv(4096)
                    if not chunk:
                        break
                    data += chunk
            text = data.decode("utf-8")
            assert text.endswith("\n") and text.count("\n") == 1
            assert json.loads(text)["round"] == 7
        finally:
            server.close()

    def test_empty_snapshot_before_first_update(self):
        server = StatusServer("127.0.0.1:0")
        try:
            status = read_status(server.address)
            assert "updated" in status
        finally:
            server.close()

    def test_read_after_close_returns_none(self):
        server = StatusServer("127.0.0.1:0")
        address = server.address
        server.close()
        assert read_status(address, timeout=0.5) is None


class TestInProcessBackendsServeStatus:
    """``status_listen=`` works on every backend through the shared core
    (it used to be a process-backend-only feature)."""

    def _build(self, cluster_class=None):
        test = SymbolicTest("branchy", branchy_program(3))
        config = ClusterConfig(num_workers=2, instructions_per_round=40,
                               status_listen="127.0.0.1:0")
        return test.build_cluster(config, cluster_class=cluster_class)

    def _run_and_snapshot(self, cluster):
        seen = {}

        def hook(round_index, cl):
            if round_index == 2 and not seen:
                seen.update(read_status(cl.status_address) or {})

        cluster.round_hook = hook
        cluster.run(max_rounds=10)
        return seen

    def test_cluster_backend_serves_live_status(self):
        cluster = self._build()
        seen = self._run_and_snapshot(cluster)
        assert seen["backend"] == "cluster"
        assert seen["round"] >= 0
        assert seen["live_workers"] == 2  # an int count, as on process
        assert seen["draining_workers"] == 0
        assert isinstance(seen["queues"], dict)
        # Torn down with the run, exactly like the tracer.
        assert cluster.status_address is None

    def test_threaded_backend_serves_live_status(self):
        cluster = self._build(cluster_class=ThreadedCloud9Cluster)
        seen = self._run_and_snapshot(cluster)
        assert seen["backend"] == "threaded"
        assert seen["live_workers"] == 2
        assert cluster.status_address is None

    def test_no_listener_without_status_listen(self):
        test = SymbolicTest("branchy", branchy_program(2))
        cluster = test.build_cluster(ClusterConfig(num_workers=2))
        assert cluster.status_address is None
        cluster.run(max_rounds=5)
        assert cluster.status_address is None
