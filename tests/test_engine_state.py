"""Unit tests for execution states: processes, threads, memory, forking."""

import pytest

from repro import lang as L
from repro.engine.state import ExecutionState, StateStatus, ThreadStatus
from repro.lang.compiler import compile_program
from repro.solver import expr as E


def _state() -> ExecutionState:
    program = compile_program(L.program(
        "p",
        L.func("main", [], L.decl("x", L.strconst("hello")), L.ret(0)),
    ))
    state = ExecutionState(program)
    state.create_main_process()
    return state


class TestConstruction:
    def test_main_process_and_thread(self):
        state = _state()
        assert state.current == (1, 0)
        assert state.current_thread.top.function == "main"
        assert state.is_running

    def test_data_segment_is_mapped(self):
        state = _state()
        address = state.string_address(b"hello")
        assert bytes(state.mem_read(address, i) for i in range(5)) == b"hello"
        assert state.mem_read(address, 5) == 0  # NUL terminator

    def test_data_segment_deterministic_across_states(self):
        assert _state().string_address(b"hello") == _state().string_address(b"hello")


class TestMemoryOperations:
    def test_allocate_and_access(self):
        state = _state()
        obj = state.allocate(4, name="buf")
        state.mem_write(obj.address, 2, 0x7F)
        assert state.mem_read(obj.address, 2) == 0x7F

    def test_allocation_addresses_deterministic(self):
        a, b = _state(), _state()
        assert a.allocate(10).address == b.allocate(10).address
        assert a.allocate(3).address == b.allocate(3).address

    def test_free(self):
        state = _state()
        obj = state.allocate(4)
        state.free(obj.address)
        with pytest.raises(Exception):
            state.mem_read(obj.address, 0)

    def test_make_shared_moves_object_to_cow_domain(self):
        state = _state()
        obj = state.allocate(4)
        state.make_shared(obj.address)
        _, _, shared = state.resolve(obj.address)
        assert shared

    def test_shared_object_visible_across_processes(self):
        state = _state()
        obj = state.allocate_shared(4, name="shm")
        child = state.fork_process(state.current_process)
        state.mem_write(obj.address, 0, 0x55, process=state.processes[1])
        assert state.mem_read(obj.address, 0, process=child) == 0x55

    def test_private_memory_isolated_across_process_fork(self):
        state = _state()
        obj = state.allocate(4)
        child = state.fork_process(state.current_process)
        state.mem_write(obj.address, 0, 9, process=state.processes[1])
        assert state.mem_read(obj.address, 0, process=child) == 0


class TestSymbolicInputs:
    def test_make_symbolic_buffer(self):
        state = _state()
        obj, symbols = state.make_symbolic_buffer("input", 3)
        assert len(symbols) == 3
        assert state.symbolic_inputs["input"] == symbols
        assert all(isinstance(c, E.Expr) for c in obj.cells)

    def test_symbol_names_deterministic(self):
        a, b = _state(), _state()
        _, syms_a = a.make_symbolic_buffer("input", 2)
        _, syms_b = b.make_symbolic_buffer("input", 2)
        assert [s.name for s in syms_a] == [s.name for s in syms_b]

    def test_constraint_deduplication(self):
        state = _state()
        x = E.bv_symbol("x", 8)
        constraint = E.eq(x, E.bv_const(1, 8))
        state.add_constraint(constraint)
        state.add_constraint(constraint)
        assert state.path_constraints.count(constraint) == 1


class TestWaitLists:
    def test_sleep_and_notify_one(self):
        state = _state()
        wlist = state.create_wait_list()
        thread = state.current_thread
        state.sleep_on(wlist, thread)
        assert thread.status == ThreadStatus.SLEEPING
        woken = state.notify(wlist)
        assert woken == [thread]
        assert thread.status == ThreadStatus.ENABLED

    def test_notify_all(self):
        state = _state()
        wlist = state.create_wait_list()
        t1 = state.current_thread
        t2 = state.current_process.new_thread()
        state.sleep_on(wlist, t1)
        state.sleep_on(wlist, t2)
        assert len(state.notify(wlist, wake_all=True)) == 2

    def test_notify_empty_list(self):
        state = _state()
        wlist = state.create_wait_list()
        assert state.notify(wlist) == []


class TestForking:
    def test_fork_isolates_locals(self):
        state = _state()
        state.current_thread.top.locals["x"] = 1
        clone = state.fork()
        clone.current_thread.top.locals["x"] = 2
        assert state.current_thread.top.locals["x"] == 1

    def test_fork_isolates_memory(self):
        state = _state()
        obj = state.allocate(4)
        clone = state.fork()
        clone.mem_write(obj.address, 0, 0x9)
        assert state.mem_read(obj.address, 0) == 0

    def test_fork_isolates_shared_memory_between_states(self):
        state = _state()
        obj = state.allocate_shared(4)
        clone = state.fork()
        clone.mem_write(obj.address, 0, 0x9)
        assert state.mem_read(obj.address, 0) == 0

    def test_fork_isolates_constraints_and_coverage(self):
        state = _state()
        clone = state.fork()
        clone.add_constraint(E.eq(E.bv_symbol("x", 8), E.bv_const(1, 8)))
        clone.coverage.add(42)
        assert not state.path_constraints
        assert 42 not in state.coverage

    def test_fork_isolates_env(self):
        state = _state()
        state.env_for_write()["posixish"] = {"table": {1: "a"}}
        clone = state.fork()
        clone.env_for_write()["posixish"]["table"][1] = "b"
        assert state.env["posixish"]["table"][1] == "a"

    def test_fork_env_is_copy_on_write(self):
        """Forking no longer deep-copies the environment area eagerly: both
        sides share it until one writes through the env_for_write barrier."""
        state = _state()
        state.env_for_write()["posixish"] = {"table": {1: "a"}}
        clone = state.fork()
        assert clone.env is state.env  # shared until first write
        shared = state.env
        clone.env_for_write()["posixish"]["table"][1] = "b"
        assert clone.env is not shared
        assert state.env is shared  # the parent still sees the original
        assert state.env["posixish"]["table"][1] == "a"
        # The parent's first write peels its own copy too (a second fork
        # sibling may still reference the shared structure).
        state.env_for_write()["posixish"]["table"][1] = "c"
        assert state.env["posixish"]["table"][1] == "c"
        assert clone.env["posixish"]["table"][1] == "b"

    def test_env_for_write_without_fork_is_in_place(self):
        state = _state()
        env = state.env_for_write()
        assert env is state.env
        assert state.env_for_write() is env  # no spurious copies

    def test_fork_gets_fresh_state_id(self):
        state = _state()
        assert state.fork().state_id != state.state_id


class TestTermination:
    def test_terminate(self):
        state = _state()
        state.terminate(3)
        assert state.status == StateStatus.EXITED
        assert state.exit_code == 3
        assert not state.is_running

    def test_terminate_error(self):
        state = _state()
        state.terminate_error("report")
        assert state.status == StateStatus.ERROR
        assert state.error == "report"
