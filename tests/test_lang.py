"""Unit tests for the program-under-test language: builder, compiler, analysis."""

import pytest

from repro import lang as L
from repro.lang.analysis import (
    branch_count,
    call_graph,
    lines_of_function,
    program_line_count,
    reachable_functions,
)
from repro.lang.ast import BinaryOp, Const, StrConst, Var
from repro.lang.compiler import CompileError, Opcode, compile_program


class TestBuilder:
    def test_integer_coercion(self):
        expr = L.add(1, 2)
        assert isinstance(expr.left, Const) and expr.left.value == 1

    def test_string_coercion(self):
        expr = L.eq(L.var("x"), "A")
        assert isinstance(expr.right, StrConst)
        assert expr.right.data == b"A"

    def test_statement_flattening(self):
        fn = L.func("f", [], [L.decl("a", 1), L.decl("b", 2)], L.ret(0))
        assert len(fn.body) == 3

    def test_bad_expression_coercion(self):
        with pytest.raises(TypeError):
            L.add(1.5, 2)

    def test_duplicate_function_names_rejected(self):
        f = L.func("f", [], L.ret(0))
        with pytest.raises(ValueError):
            L.program("p", f, f, entry="f")

    def test_duplicate_params_rejected(self):
        with pytest.raises(ValueError):
            L.func("f", ["a", "a"], L.ret(0))

    def test_missing_entry_rejected(self):
        f = L.func("f", [], L.ret(0))
        with pytest.raises(ValueError):
            L.program("p", f)  # entry defaults to "main"

    def test_operator_helpers_produce_expected_ops(self):
        assert L.band(1, 2).op == BinaryOp.AND
        assert L.lor(1, 2).op == BinaryOp.LOR
        assert L.shr(1, 2).op == BinaryOp.SHR
        assert L.mod(1, 2).op == BinaryOp.MOD


class TestCompiler:
    def _compile_main(self, *body):
        return compile_program(L.program("p", L.func("main", [], *body)))

    def test_every_function_ends_with_ret(self):
        compiled = self._compile_main(L.decl("x", 1))
        assert compiled.function("main").instructions[-1].opcode == Opcode.RET

    def test_if_branch_targets(self):
        compiled = self._compile_main(
            L.decl("x", 1),
            L.if_(L.eq(L.var("x"), 1), [L.assign("x", 2)], [L.assign("x", 3)]),
            L.ret(L.var("x")),
        )
        instructions = compiled.function("main").instructions
        branches = [i for i in instructions if i.opcode == Opcode.BRANCH]
        assert len(branches) == 1
        branch = branches[0]
        assert branch.target is not None and branch.false_target is not None
        assert branch.target != branch.false_target

    def test_while_produces_back_edge(self):
        compiled = self._compile_main(
            L.decl("i", 0),
            L.while_(L.lt(L.var("i"), 3),
                     L.assign("i", L.add(L.var("i"), 1))),
            L.ret(L.var("i")),
        )
        instructions = compiled.function("main").instructions
        jumps = [i for i in instructions if i.opcode == Opcode.JUMP]
        assert any(j.target is not None and j.target < instructions.index(j)
                   for j in jumps)

    def test_break_targets_loop_exit(self):
        compiled = self._compile_main(
            L.while_(1, L.break_()),
            L.ret(7),
        )
        instructions = compiled.function("main").instructions
        branch = next(i for i in instructions if i.opcode == Opcode.BRANCH)
        break_jump = next(i for i in instructions
                          if i.opcode == Opcode.JUMP and i.target == branch.false_target)
        assert break_jump is not None

    def test_break_outside_loop_rejected(self):
        with pytest.raises(CompileError):
            self._compile_main(L.break_())

    def test_continue_outside_loop_rejected(self):
        with pytest.raises(CompileError):
            self._compile_main(L.continue_())

    def test_call_in_expression_is_hoisted(self):
        program = L.program(
            "p",
            L.func("helper", ["v"], L.ret(L.add(L.var("v"), 1))),
            L.func("main", [],
                   L.decl("x", L.add(L.call("helper", 1), L.call("helper", 2))),
                   L.ret(L.var("x"))),
        )
        compiled = compile_program(program)
        calls = [i for i in compiled.function("main").instructions
                 if i.opcode == Opcode.CALL]
        assert len(calls) == 2
        assert all(c.dest.startswith("%t") for c in calls)

    def test_string_constants_interned_once(self):
        compiled = self._compile_main(
            L.decl("a", L.strconst("hello")),
            L.decl("b", L.strconst("hello")),
            L.ret(0),
        )
        assert list(compiled.data) == [b"hello"]

    def test_line_numbers_unique_per_statement(self):
        compiled = self._compile_main(
            L.decl("a", 1), L.decl("b", 2), L.ret(0))
        lines = [i.line for i in compiled.function("main").instructions]
        # Three statements plus the implicit return -> at least 4 lines.
        assert len(set(lines)) >= 4

    def test_total_instruction_count(self):
        compiled = self._compile_main(L.decl("a", 1), L.ret(L.var("a")))
        assert compiled.total_instructions == len(compiled.function("main").instructions)


class TestAnalysis:
    def _program(self):
        return compile_program(L.program(
            "p",
            L.func("leaf", ["v"], L.ret(L.var("v"))),
            L.func("middle", ["v"], L.ret(L.call("leaf", L.var("v")))),
            L.func("unused", [], L.ret(L.call("native_thing"))),
            L.func("main", [], L.ret(L.call("middle", 1))),
        ))

    def test_program_line_count(self):
        compiled = self._program()
        assert program_line_count(compiled) == compiled.line_count > 0

    def test_call_graph_includes_native_callees(self):
        graph = call_graph(self._program())
        assert graph["main"] == {"middle"}
        assert graph["unused"] == {"native_thing"}

    def test_reachable_functions_from_entry(self):
        assert reachable_functions(self._program()) == {"main", "middle", "leaf"}

    def test_lines_of_function_partition(self):
        compiled = self._program()
        lines_main = lines_of_function(compiled, "main")
        lines_leaf = lines_of_function(compiled, "leaf")
        assert lines_main.isdisjoint(lines_leaf)

    def test_branch_count(self):
        compiled = compile_program(L.program(
            "p", L.func("main", [],
                        L.if_(L.eq(1, 1), [L.ret(1)]),
                        L.ret(0))))
        assert branch_count(compiled) == 1
