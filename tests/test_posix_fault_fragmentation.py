"""Unit tests for fault injection and network-stream fragmentation."""

from repro import lang as L
from repro.engine import BugKind
from repro.posix.buffers import BlockBuffer, StreamBuffer
from repro.testing import SymbolicTest


def run_program(entry_body, options=None, extra_funcs=()):
    program = L.program("p", *extra_funcs, L.func("main", [], *entry_body))
    test = SymbolicTest("t", program, options=options or {})
    return test.run_single()


def socketpair_prelude():
    return [
        L.decl("pair", L.call("malloc", 2)),
        L.expr_stmt(L.call("socketpair", L.var("pair"))),
        L.decl("client", L.index(L.var("pair"), 0)),
        L.decl("server", L.index(L.var("pair"), 1)),
    ]


class TestFaultInjection:
    def test_global_fault_injection_forks_failure_path(self):
        body = socketpair_prelude() + [
            L.expr_stmt(L.call("cloud9_fi_enable")),
            L.decl("msg", L.strconst("hi")),
            L.decl("n", L.call("write", L.var("client"), L.var("msg"), 2)),
            L.if_(L.eq(L.var("n"), 0xFFFFFFFF), [L.ret(1)], [L.ret(0)]),
        ]
        result = run_program(body)
        exit_codes = {t.exit_code for t in result.test_cases}
        assert exit_codes == {0, 1}

    def test_fault_injection_disabled_no_fork(self):
        body = socketpair_prelude() + [
            L.expr_stmt(L.call("cloud9_fi_enable")),
            L.expr_stmt(L.call("cloud9_fi_disable")),
            L.decl("msg", L.strconst("hi")),
            L.decl("n", L.call("write", L.var("client"), L.var("msg"), 2)),
            L.ret(L.var("n")),
        ]
        result = run_program(body)
        assert result.paths_completed == 1
        assert result.test_cases[0].exit_code == 2

    def test_per_fd_fault_injection_via_ioctl(self):
        body = socketpair_prelude() + [
            # SIO_FAULT_INJ = 0x9003, WR = 2
            L.expr_stmt(L.call("ioctl", L.var("client"), 0x9003, 2)),
            L.decl("msg", L.strconst("x")),
            L.decl("n", L.call("write", L.var("client"), L.var("msg"), 1)),
            L.if_(L.eq(L.var("n"), 0xFFFFFFFF), [L.ret(1)], [L.ret(0)]),
        ]
        result = run_program(body)
        assert {t.exit_code for t in result.test_cases} == {0, 1}

    def test_fault_injection_records_fault_count_in_options(self):
        body = socketpair_prelude() + [
            L.decl("msg", L.strconst("x")),
            L.decl("n", L.call("write", L.var("client"), L.var("msg"), 1)),
            L.ret(0),
        ]
        result = run_program(body, options={"fault_injection_all": True})
        assert result.paths_completed == 2

    def test_failed_read_does_not_consume_stream_data(self):
        body = socketpair_prelude() + [
            L.decl("msg", L.strconst("Q")),
            L.expr_stmt(L.call("write", L.var("client"), L.var("msg"), 1)),
            L.expr_stmt(L.call("ioctl", L.var("server"), 0x9003, 1)),   # RD faults
            L.decl("buf", L.call("malloc", 1)),
            L.decl("n", L.call("read", L.var("server"), L.var("buf"), 1)),
            L.if_(L.eq(L.var("n"), 0xFFFFFFFF), [
                # Retry without faults: the data must still be there.
                L.expr_stmt(L.call("ioctl", L.var("server"), 0x9003, 0)),
                L.decl("n2", L.call("read", L.var("server"), L.var("buf"), 1)),
                L.ret(L.index(L.var("buf"), 0)),
            ]),
            L.ret(L.index(L.var("buf"), 0)),
        ]
        result = run_program(body)
        assert all(t.exit_code == ord("Q") for t in result.test_cases)


class TestFragmentation:
    def test_explicit_pattern_controls_read_sizes(self):
        body = socketpair_prelude() + [
            L.decl("msg", L.strconst("abcdef")),
            L.expr_stmt(L.call("write", L.var("client"), L.var("msg"), 6)),
            L.decl("pattern", L.call("malloc", 2)),
            L.store(L.var("pattern"), 0, 2),
            L.store(L.var("pattern"), 1, 4),
            L.expr_stmt(L.call("c9_set_frag_pattern", L.var("server"),
                               L.var("pattern"), 2)),
            L.decl("buf", L.call("malloc", 8)),
            L.decl("n1", L.call("read", L.var("server"), L.var("buf"), 8)),
            L.decl("n2", L.call("read", L.var("server"), L.var("buf"), 8)),
            L.ret(L.add(L.mul(L.var("n1"), 10), L.var("n2"))),
        ]
        result = run_program(body)
        assert result.test_cases[0].exit_code == 24

    def test_symbolic_fragmentation_forks_over_read_sizes(self):
        body = socketpair_prelude() + [
            L.decl("msg", L.strconst("abc")),
            L.expr_stmt(L.call("write", L.var("client"), L.var("msg"), 3)),
            L.expr_stmt(L.call("ioctl", L.var("server"), 0x9002, 1)),  # SIO_PKT_FRAGMENT
            L.decl("buf", L.call("malloc", 4)),
            L.decl("n", L.call("read", L.var("server"), L.var("buf"), 4)),
            L.ret(L.var("n")),
        ]
        result = run_program(body)
        # First read may return 1, 2 or 3 bytes.
        assert result.paths_completed == 3
        assert {t.exit_code for t in result.test_cases} == {1, 2, 3}

    def test_frag_choice_limit_bounds_fanout(self):
        body = socketpair_prelude() + [
            L.decl("msg", L.strconst("abcdefgh")),
            L.expr_stmt(L.call("write", L.var("client"), L.var("msg"), 8)),
            L.expr_stmt(L.call("ioctl", L.var("server"), 0x9002, 1)),
            L.decl("buf", L.call("malloc", 8)),
            L.decl("n", L.call("read", L.var("server"), L.var("buf"), 8)),
            L.ret(L.var("n")),
        ]
        result = run_program(body, options={"frag_choice_limit": 3})
        # Sizes 1, 2 and "all 8" only.
        assert {t.exit_code for t in result.test_cases} == {1, 2, 8}


class TestBuffers:
    def test_stream_buffer_fifo_and_eof(self):
        stream = StreamBuffer()
        assert stream.push([1, 2, 3]) == 3
        assert stream.pop(2) == [1, 2]
        stream.close_write()
        assert not stream.at_eof
        assert stream.pop(5) == [3]
        assert stream.at_eof and stream.readable

    def test_stream_buffer_capacity(self):
        stream = StreamBuffer(capacity=2)
        assert stream.push([1, 2, 3]) == 2
        assert not stream.writable

    def test_stream_buffer_datagrams(self):
        stream = StreamBuffer()
        stream.push_datagram([1, 2, 3])
        stream.push_datagram([4])
        assert stream.pop_datagram(max_bytes=2) == [1, 2]
        assert stream.pop_datagram() == [4]
        assert stream.pop_datagram() == []

    def test_block_buffer_grows_on_write(self):
        block = BlockBuffer(2)
        block.write(4, [9, 9])
        assert block.size == 6
        assert block.read(0, 10) == [0, 0, 0, 0, 9, 9]

    def test_block_buffer_truncate(self):
        block = BlockBuffer(4)
        block.truncate(1)
        assert block.size == 1
        block.truncate(3)
        assert block.size == 3
