"""Unit tests for symbolic memory: objects, address spaces, CoW domains."""

import pytest

from repro.engine.memory import (
    AddressSpace,
    CowDomain,
    DeterministicAllocator,
    MemoryError_,
    MemoryObject,
)
from repro.solver import expr as E


class TestMemoryObject:
    def test_read_write(self):
        obj = MemoryObject(0x1000, 4, name="buf")
        obj.write_byte(0, 0x41)
        assert obj.read_byte(0) == 0x41
        assert obj.read_byte(1) == 0

    def test_out_of_bounds_read(self):
        obj = MemoryObject(0x1000, 4)
        with pytest.raises(MemoryError_):
            obj.read_byte(4)

    def test_out_of_bounds_write(self):
        obj = MemoryObject(0x1000, 4)
        with pytest.raises(MemoryError_):
            obj.write_byte(7, 1)

    def test_read_only_object(self):
        obj = MemoryObject(0x1000, 4, writable=False)
        with pytest.raises(MemoryError_):
            obj.write_byte(0, 1)

    def test_symbolic_cells(self):
        obj = MemoryObject(0x1000, 2)
        sym = E.bv_symbol("s", 8)
        obj.write_byte(0, sym)
        assert obj.read_byte(0) is sym
        assert obj.concrete_bytes() is None

    def test_concrete_bytes(self):
        obj = MemoryObject(0x1000, 2)
        obj.write_bytes(0, [0x41, 0x42])
        assert obj.concrete_bytes() == b"AB"

    def test_copy_is_independent(self):
        obj = MemoryObject(0x1000, 2)
        clone = obj.copy()
        clone.write_byte(0, 9)
        assert obj.read_byte(0) == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            MemoryObject(0x1000, -1)


class TestDeterministicAllocator:
    def test_addresses_are_deterministic(self):
        a = DeterministicAllocator()
        b = DeterministicAllocator()
        sizes = [8, 1, 100, 16]
        assert [a.allocate(s) for s in sizes] == [b.allocate(s) for s in sizes]

    def test_alignment(self):
        allocator = DeterministicAllocator()
        first = allocator.allocate(3)
        second = allocator.allocate(1)
        assert second % 16 == 0
        assert second > first

    def test_copy_preserves_cursor(self):
        allocator = DeterministicAllocator()
        allocator.allocate(10)
        clone = allocator.copy()
        assert clone.allocate(4) == allocator.allocate(4)


class TestAddressSpace:
    def test_bind_resolve(self):
        space = AddressSpace()
        obj = MemoryObject(0x2000, 8, name="x")
        space.bind(obj)
        found, offset = space.resolve(0x2000)
        assert found is obj and offset == 0

    def test_interior_pointer_resolution(self):
        space = AddressSpace()
        space.bind(MemoryObject(0x2000, 8))
        found, offset = space.resolve(0x2005)
        assert offset == 5

    def test_unmapped_access(self):
        space = AddressSpace()
        with pytest.raises(MemoryError_):
            space.resolve(0x9999)

    def test_unbind(self):
        space = AddressSpace()
        space.bind(MemoryObject(0x2000, 8))
        space.unbind(0x2000)
        assert 0x2000 not in space
        with pytest.raises(MemoryError_):
            space.unbind(0x2000)

    def test_clone_copy_on_write(self):
        space = AddressSpace()
        space.bind(MemoryObject(0x2000, 4))
        clone = space.clone()
        clone.write_byte(0x2000, 0, 0x7)
        assert space.read_byte(0x2000, 0) == 0
        assert clone.read_byte(0x2000, 0) == 0x7

    def test_clone_write_in_original_does_not_leak(self):
        space = AddressSpace()
        space.bind(MemoryObject(0x2000, 4))
        clone = space.clone()
        space.write_byte(0x2000, 1, 0x9)
        assert clone.read_byte(0x2000, 1) == 0

    def test_len(self):
        space = AddressSpace()
        space.bind(MemoryObject(0x2000, 4))
        space.bind(MemoryObject(0x3000, 4))
        assert len(space) == 2


class TestCowDomain:
    def test_shared_object_visible(self):
        domain = CowDomain()
        obj = MemoryObject(0x4000, 4)
        domain.share(obj)
        assert 0x4000 in domain
        assert obj.shared

    def test_clone_isolates_states(self):
        domain = CowDomain()
        obj = MemoryObject(0x4000, 4)
        domain.share(obj)
        clone = domain.clone()
        clone_obj, _ = clone.resolve(0x4000)
        clone_obj.write_byte(0, 0x5)
        assert obj.read_byte(0) == 0

    def test_interior_resolution(self):
        domain = CowDomain()
        domain.share(MemoryObject(0x4000, 8))
        resolved = domain.resolve(0x4003)
        assert resolved is not None and resolved[1] == 3
        assert domain.resolve(0x9000) is None
