"""Tests for the static-partitioning baseline and its comparison properties."""

import pytest

from repro.cluster import StaticPartitionConfig
from repro.testing import SymbolicTest

from conftest import branchy_program, single_branch_program


def make_test(program):
    return SymbolicTest("t", program, use_posix_model=False)


class TestBootstrapSplit:
    def test_bootstrap_produces_enough_prefixes(self):
        test = make_test(branchy_program(3))
        cluster = test.build_static_cluster(StaticPartitionConfig(num_workers=3))
        assert len(cluster.bootstrap.prefixes) >= 3

    def test_partitions_are_disjoint(self):
        test = make_test(branchy_program(3))
        cluster = test.build_static_cluster(StaticPartitionConfig(num_workers=3))
        ok, message = cluster.check_partition_disjointness()
        assert ok, message

    def test_single_path_program_leaves_workers_idle(self):
        # A program with one path cannot be split: all but one worker idles.
        test = make_test(single_branch_program())
        cluster = test.build_static_cluster(StaticPartitionConfig(num_workers=4))
        assert cluster.idle_worker_count() >= 2

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            StaticPartitionConfig(num_workers=0)
        with pytest.raises(ValueError):
            StaticPartitionConfig(instructions_per_round=0)
        with pytest.raises(ValueError):
            StaticPartitionConfig(partitions_per_worker=0)


class TestStaticExploration:
    def test_explores_all_paths_of_small_program(self):
        test = make_test(branchy_program(3))
        reference = test.run_single()
        result = test.run_static_cluster(num_workers=3)
        assert result.exhausted
        assert result.paths_completed == reference.paths_completed

    def test_coverage_matches_single_node_run(self):
        test = make_test(branchy_program(3))
        reference = test.run_single()
        result = test.run_static_cluster(num_workers=2)
        assert result.covered_lines == reference.covered_lines

    def test_no_states_are_ever_transferred(self):
        test = make_test(branchy_program(3))
        result = test.run_static_cluster(num_workers=3)
        assert result.total_states_transferred == 0
        assert all(not snap.load_balancing_enabled
                   for snap in result.timeline.snapshots)

    def test_exit_codes_match_dynamic_cluster(self):
        test = make_test(branchy_program(2))
        static = test.run_static_cluster(num_workers=2)
        dynamic = test.run_cluster(num_workers=2)
        static_codes = sorted(tc.exit_code for tc in static.test_cases)
        dynamic_codes = sorted(tc.exit_code for tc in dynamic.test_cases)
        assert static_codes == dynamic_codes


class TestImbalance:
    def test_static_partitioning_shows_imbalance_on_skewed_trees(self):
        """The §2 claim: static partitioning leaves workers idle while one
        worker still has a deep subtree, whereas dynamic balancing keeps the
        frontier spread out."""
        from repro import lang as L

        # A skewed program: one branch terminates immediately, the other
        # opens a deep subtree of further branching.
        program = L.program(
            "skewed",
            L.func(
                "main", [],
                L.decl("buf", L.call("cloud9_symbolic_buffer", 4, L.strconst("in"))),
                L.if_(L.lt(L.index(L.var("buf"), 0), 128), [L.ret(0)]),
                L.decl("i", 1),
                L.decl("acc", 0),
                L.while_(L.lt(L.var("i"), 4),
                    L.if_(L.gt(L.index(L.var("buf"), L.var("i")), 64),
                          [L.assign("acc", L.add(L.var("acc"), 1))]),
                    L.assign("i", L.add(L.var("i"), 1)),
                ),
                L.ret(L.var("acc")),
            ),
        )
        test = make_test(program)
        config = StaticPartitionConfig(num_workers=2, partitions_per_worker=1,
                                       instructions_per_round=30)
        cluster = test.build_static_cluster(config)
        result = cluster.run()
        assert result.exhausted
        # At least one recorded round had an idle worker while another still
        # held multiple candidates (workload imbalance).
        imbalanced_rounds = [
            snap for snap in result.timeline.snapshots
            if min(snap.queue_lengths.values()) == 0
            and max(snap.queue_lengths.values()) >= 1
        ]
        assert imbalanced_rounds
