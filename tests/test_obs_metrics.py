"""The metrics registry and the stats classes rebuilt as views over it."""

import pickle

import pytest

from repro.cluster.stats import WorkerStats
from repro.obs.metrics import (
    Counter,
    CounterField,
    Gauge,
    Histogram,
    MetricsRegistry,
    bind_counters,
    counter_fields,
)
from repro.solver.cache import CacheStats, ConstraintCache
from repro.solver.solver import Solver, SolverStats

from conftest import branchy_program, make_executor


class TestPrimitives:
    def test_counter(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        c.value += 2
        assert c.value == 7

    def test_gauge(self):
        g = Gauge("q")
        g.set(3.5)
        assert g.value == 3.5

    def test_histogram(self):
        h = Histogram("lat")
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 3
        assert s["min"] == 1.0 and s["max"] == 3.0
        assert h.mean == pytest.approx(2.0)

    def test_empty_histogram_summary(self):
        assert Histogram("e").summary() == {
            "count": 0, "total": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0}


class TestRegistry:
    def test_get_or_create(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert "a" in reg and len(reg) == 1

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")
        with pytest.raises(TypeError):
            reg.histogram("a")

    def test_snapshot_flattens_histograms(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(4.0)
        snap = reg.snapshot()
        assert snap["c"] == 2
        assert snap["g"] == 1.5
        assert snap["h.count"] == 1 and snap["h.mean"] == 4.0


class TestCounterField:
    def test_view_class_round_trip(self):
        class Stats:
            hits = CounterField("demo_hits")

            def __init__(self, registry=None):
                bind_counters(self, counter_fields(type(self)), registry)

        reg = MetricsRegistry()
        stats = Stats(registry=reg)
        stats.hits += 3
        stats.hits = stats.hits + 1
        assert stats.hits == 4
        assert reg.snapshot()["demo_hits"] == 4
        # Class access returns the descriptor (introspection works).
        assert isinstance(Stats.hits, CounterField)

    def test_private_without_registry(self):
        class Stats:
            n = CounterField()

            def __init__(self):
                bind_counters(self, counter_fields(type(self)), None)

        a, b = Stats(), Stats()
        a.n += 1
        assert a.n == 1 and b.n == 0


class TestStatsViews:
    def test_solver_stats_equality_and_kwargs(self):
        s = SolverStats(queries=3, cache_hits=1)
        assert s.queries == 3 and s.cache_hits == 1
        assert s.snapshot()["queries"] == 3
        with pytest.raises(TypeError):
            SolverStats(bogus=1)

    def test_cache_stats_shapes(self):
        s = CacheStats(hits=2, misses=3)
        assert s.lookups == 5
        assert s.hit_rate == pytest.approx(0.4)
        assert s == CacheStats(hits=2, misses=3)

    def test_worker_stats_pickles_and_compares(self):
        stats = WorkerStats(worker_id=7)
        stats.useful_instructions += 10
        stats.transfers = 2
        clone = pickle.loads(pickle.dumps(stats))
        assert clone == stats
        assert clone.worker_id == 7
        assert clone.useful_instructions == 10
        clone.replays += 1  # the detached copy is still mutable
        assert clone != stats

    def test_worker_stats_registry_visibility(self):
        reg = MetricsRegistry()
        stats = WorkerStats(worker_id=1, registry=reg)
        stats.jobs_imported += 4
        assert reg.snapshot()["worker_jobs_imported"] == 4

    def test_solver_and_caches_share_one_registry(self):
        solver = Solver()
        assert isinstance(solver.metrics, MetricsRegistry)
        cache = ConstraintCache(registry=solver.metrics)
        cache.stats.hits += 1
        snap = solver.metrics.snapshot()
        assert snap["constraint_cache_hits"] == 1
        assert "solver_queries" in snap

    def test_executor_counters_live_in_solver_registry(self):
        executor = make_executor(branchy_program(2))
        executor.run(max_paths=4)
        snap = executor.metrics.snapshot()
        assert snap["engine_instructions"] == executor.total_instructions
        assert snap["engine_instructions"] > 0
        assert snap["solver_queries"] == executor.solver.stats.queries
