"""Unit tests for the expression language (repro.solver.expr)."""

import pytest

from repro.solver import expr as E


class TestSorts:
    def test_bitvector_sort_equality(self):
        assert E.BvSort(8) == E.BvSort(8)
        assert E.BvSort(8) != E.BvSort(16)
        assert E.BoolSort() == E.BoolSort()

    def test_bitvector_sort_mask(self):
        assert E.BvSort(8).mask == 0xFF
        assert E.BvSort(32).mask == 0xFFFFFFFF

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            E.BvSort(0)


class TestConstruction:
    def test_constant_masking(self):
        assert E.bv_const(256, 8).value == 0
        assert E.bv_const(-1, 8).value == 0xFF

    def test_symbol_requires_name(self):
        with pytest.raises(ValueError):
            E.bv_symbol("")

    def test_structural_equality_and_hash(self):
        a = E.add(E.bv_symbol("x", 8), E.bv_const(1, 8))
        b = E.add(E.bv_symbol("x", 8), E.bv_const(1, 8))
        assert a == b
        assert hash(a) == hash(b)
        assert a != E.add(E.bv_symbol("y", 8), E.bv_const(1, 8))

    def test_width_mismatch_rejected(self):
        with pytest.raises(TypeError):
            E.add(E.bv_symbol("x", 8), E.bv_const(1, 16))

    def test_bool_operand_where_bv_expected(self):
        with pytest.raises(TypeError):
            E.add(E.TRUE, E.FALSE)

    def test_comparison_produces_bool(self):
        cmp_expr = E.ult(E.bv_symbol("x", 8), E.bv_const(10, 8))
        assert cmp_expr.is_bool

    def test_extract_validation(self):
        x = E.bv_symbol("x", 8)
        with pytest.raises(ValueError):
            E.extract(x, 8, 0)
        with pytest.raises(ValueError):
            E.extract(x, 2, 5)

    def test_zext_shrink_rejected(self):
        with pytest.raises(ValueError):
            E.zext(E.bv_symbol("x", 16), 8)

    def test_zext_same_width_is_identity(self):
        x = E.bv_symbol("x", 8)
        assert E.zext(x, 8) is x

    def test_concat_width(self):
        x = E.bv_symbol("x", 8)
        y = E.bv_symbol("y", 8)
        assert E.concat(x, y).width == 16

    def test_ite_sort_mismatch(self):
        with pytest.raises(TypeError):
            E.ite(E.TRUE, E.bv_const(1, 8), E.bv_const(1, 16))

    def test_symbols_collection(self):
        x = E.bv_symbol("x", 8)
        y = E.bv_symbol("y", 8)
        expr = E.add(E.mul(x, y), x)
        assert expr.symbols() == {x, y}

    def test_depth(self):
        x = E.bv_symbol("x", 8)
        assert x.depth() == 1
        assert E.add(x, E.bv_const(1, 8)).depth() == 2


class TestEvaluate:
    def test_arithmetic_wraps(self):
        x = E.bv_symbol("x", 8)
        expr = E.add(x, E.bv_const(200, 8))
        assert E.evaluate(expr, {x: 100}) == (300 & 0xFF)

    def test_sub_wraps(self):
        x = E.bv_symbol("x", 8)
        assert E.evaluate(E.sub(E.bv_const(0, 8), x), {x: 1}) == 0xFF

    def test_division_by_zero_is_all_ones(self):
        x = E.bv_symbol("x", 8)
        assert E.evaluate(E.udiv(E.bv_const(5, 8), x), {x: 0}) == 0xFF

    def test_rem_by_zero_returns_lhs(self):
        x = E.bv_symbol("x", 8)
        assert E.evaluate(E.urem(E.bv_const(5, 8), x), {x: 0}) == 5

    def test_shift_beyond_width(self):
        x = E.bv_symbol("x", 8)
        assert E.evaluate(E.shl(x, E.bv_const(9, 8)), {x: 1}) == 0
        assert E.evaluate(E.lshr(x, E.bv_const(9, 8)), {x: 255}) == 0

    def test_concat_extract_roundtrip(self):
        hi = E.bv_symbol("hi", 8)
        lo = E.bv_symbol("lo", 8)
        word = E.concat(hi, lo)
        assignment = {hi: 0xAB, lo: 0xCD}
        assert E.evaluate(word, assignment) == 0xABCD
        assert E.evaluate(E.extract(word, 15, 8), assignment) == 0xAB
        assert E.evaluate(E.extract(word, 7, 0), assignment) == 0xCD

    def test_signed_comparisons(self):
        x = E.bv_symbol("x", 8)
        y = E.bv_symbol("y", 8)
        # 0xFF is -1 signed, so -1 < 1.
        assert E.evaluate(E.slt(x, y), {x: 0xFF, y: 1}) is True
        assert E.evaluate(E.ult(x, y), {x: 0xFF, y: 1}) is False

    def test_boolean_connectives(self):
        x = E.bv_symbol("x", 8)
        cond = E.logical_and(E.ult(x, E.bv_const(10, 8)),
                             E.ne(x, E.bv_const(0, 8)))
        assert E.evaluate(cond, {x: 5}) is True
        assert E.evaluate(cond, {x: 0}) is False
        assert E.evaluate(cond, {x: 20}) is False

    def test_implies(self):
        x = E.bv_symbol("x", 8)
        expr = E.implies(E.eq(x, E.bv_const(1, 8)), E.ult(x, E.bv_const(5, 8)))
        assert E.evaluate(expr, {x: 1}) is True
        assert E.evaluate(expr, {x: 9}) is True  # antecedent false

    def test_ite(self):
        x = E.bv_symbol("x", 8)
        expr = E.ite(E.eq(x, E.bv_const(0, 8)), E.bv_const(10, 8), E.bv_const(20, 8))
        assert E.evaluate(expr, {x: 0}) == 10
        assert E.evaluate(expr, {x: 3}) == 20

    def test_missing_symbol_raises(self):
        x = E.bv_symbol("x", 8)
        with pytest.raises(KeyError):
            E.evaluate(E.add(x, x), {})


class TestSignedHelpers:
    def test_to_signed(self):
        assert E.to_signed(0xFF, 8) == -1
        assert E.to_signed(0x7F, 8) == 127
        assert E.to_signed(0x80, 8) == -128

    def test_from_signed(self):
        assert E.from_signed(-1, 8) == 0xFF
        assert E.from_signed(5, 8) == 5

    def test_concat_bytes(self):
        cells = [E.bv_const(0x12, 8), E.bv_const(0x34, 8)]
        assert E.evaluate(E.concat_bytes(cells), {}) == 0x1234
        with pytest.raises(ValueError):
            E.concat_bytes([])
