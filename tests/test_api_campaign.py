"""Tests for Campaign batch execution (repro.api.campaign)."""

import pytest

from repro import lang as L
from repro.api import Campaign, ExplorationLimits
from repro.testing import SymbolicTest

from conftest import branchy_program, single_branch_program


def buggy_program() -> L.Program:
    return L.program(
        "buggy",
        L.func(
            "main", [],
            L.decl("buf", L.call("cloud9_symbolic_buffer", 1, L.strconst("input"))),
            L.if_(L.eq(L.index(L.var("buf"), 0), ord("!")),
                  [L.assert_(L.eq(0, 1), "boom"), L.ret(1)],
                  [L.ret(0)]),
        ),
    )


class TestCampaignScheduling:
    def test_add_generates_unique_labels(self):
        campaign = Campaign("c")
        test = SymbolicTest("t", single_branch_program())
        first = campaign.add(test)
        second = campaign.add(test)
        assert first.label == "t@single"
        assert second.label != first.label
        assert len(campaign) == 2

    def test_explicit_duplicate_label_rejected(self):
        campaign = Campaign("c")
        test = SymbolicTest("t", single_branch_program())
        campaign.add(test, label="only")
        with pytest.raises(ValueError, match="duplicate campaign label"):
            campaign.add(test, label="only")

    def test_add_folds_limit_kwargs(self):
        campaign = Campaign("c", limits=ExplorationLimits(max_rounds=9))
        test = SymbolicTest("t", single_branch_program())
        entry = campaign.add(test, backend="cluster", workers=2, max_paths=5)
        assert entry.limits.max_paths == 5
        assert entry.limits.max_rounds == 9      # campaign default survives
        assert entry.options == {"workers": 2}   # backend options remain

    def test_add_grid_expands_configurations(self):
        campaign = Campaign("c")
        test = SymbolicTest("t", single_branch_program())
        entries = campaign.add_grid(test, [
            {"backend": "single"},
            {"backend": "cluster", "workers": 2, "label": "two"},
            {"backend": "cluster", "workers": 4},
        ])
        assert len(entries) == 3
        assert entries[1].label == "two"
        assert entries[2].options["workers"] == 4


class TestCampaignExecution:
    def test_aggregates_across_tests_and_backends(self):
        campaign = Campaign("mixed")
        campaign.add(SymbolicTest("a", single_branch_program()))
        campaign.add(SymbolicTest("b", branchy_program(1)),
                     backend="cluster", workers=2, instructions_per_round=50)
        outcome = campaign.run()
        assert outcome.total_paths == 2 + 3
        assert set(outcome.results) == {"a@single", "b@cluster"}
        assert set(outcome.by_backend()) == {"single", "cluster"}
        assert outcome.total_useful_instructions > 0
        # only the cluster entry keeps a timeline
        assert list(outcome.timelines()) == ["b@cluster"]
        rows = outcome.summary_rows()
        assert len(rows) == 2 and rows[0][0] == "a@single"

    def test_grid_combined_coverage_per_test(self):
        test = SymbolicTest("t", branchy_program(2))
        campaign = Campaign("grid")
        campaign.add_grid(test, [
            {"backend": "single", "max_paths": 2},
            {"backend": "cluster", "workers": 2, "instructions_per_round": 50},
        ])
        outcome = campaign.run()
        exhaustive = outcome.results["t@cluster"]
        assert exhaustive.paths_completed == 9
        # the union over runs covers at least what any single run covered
        combined = outcome.combined_covered_lines("t")
        for result in outcome.results.values():
            assert result.covered_lines <= combined
        assert (outcome.combined_coverage_percent("t")
                >= exhaustive.coverage_percent)

    def test_bug_aggregation_and_fail_fast(self):
        campaign = Campaign("bugs")
        campaign.add(SymbolicTest("crash", buggy_program()), label="crash")
        campaign.add(SymbolicTest("fine", single_branch_program()),
                     label="never-runs")
        outcome = campaign.run(fail_fast=True)
        assert list(outcome.results) == ["crash"]
        assert outcome.bug_summaries()
        assert len(outcome.all_bugs) >= 1

    def test_on_result_progress_callback(self):
        campaign = Campaign("cb")
        campaign.add(SymbolicTest("t", single_branch_program()))
        seen = []
        campaign.run(on_result=lambda entry, result:
                     seen.append((entry.label, result.paths_completed)))
        assert seen == [("t@single", 2)]
