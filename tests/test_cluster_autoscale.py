"""Autoscaling elastic clusters and the incremental drain (§2.3).

Covers the :mod:`repro.cluster.autoscale` policy engine (band/spread/
wall-time signals, hysteresis, cooldown, min/max clamps), the chunked
``remove_worker`` drain on both backends, the load balancer's membership-
churn hygiene (report seeding on join, atomic purge on leave), the unified
checkpoint cadence, and cumulative accounting (wall time, pre-crash bugs)
across ``resume_from=``.
"""

import multiprocessing

import pytest

from repro import lang as L
from repro.api import ExplorationLimits
from repro.cluster.autoscale import AutoscalePolicy, Autoscaler
from repro.cluster.checkpoint import ClusterCheckpoint
from repro.cluster.coordinator import ClusterConfig
from repro.cluster.load_balancer import LoadBalancer
from repro.cluster.transport import LOAD_BALANCER_ID, Message, MessageKind
from repro.distrib import specs
from repro.distrib.cluster import ProcessCloud9Cluster, ProcessClusterConfig
from repro.engine.errors import BugKind, BugReport
from repro.engine.test_case import TestCase
from repro.testing.symbolic_test import SymbolicTest

LIMITS = ExplorationLimits(max_rounds=500)

fork_available = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(
    not fork_available,
    reason="runtime-registered specs reach child processes only under fork")


def _buggy_program(buffer_size=3):
    """branchy plus a deterministic assertion bug on the all-'A' paths."""
    return L.program(
        "as-buggy",
        L.func(
            "main", [],
            L.decl("buf", L.call("cloud9_symbolic_buffer", buffer_size,
                                 L.strconst("input"))),
            L.decl("i", 0),
            L.decl("acc", 0),
            L.while_(L.lt(L.var("i"), buffer_size),
                L.decl("c", L.index(L.var("buf"), L.var("i"))),
                L.if_(L.eq(L.var("c"), ord("A")),
                      [L.assign("acc", L.add(L.var("acc"), 1))],
                      [L.if_(L.eq(L.var("c"), ord("B")),
                             [L.assign("acc", L.add(L.var("acc"), 3))])]),
                L.assign("i", L.add(L.var("i"), 1)),
            ),
            L.assert_(L.ne(L.var("acc"), buffer_size), "all-A input"),
            L.ret(L.var("acc")),
        ),
    )


def _buggy_test(buffer_size=3):
    return SymbolicTest(name="as-buggy", program=_buggy_program(buffer_size),
                        use_posix_model=False)


# Registered at import time: "fork" children inherit the registry.
specs.register_spec("test-as-buggy", _buggy_test, replace=True)


# -- policy signals ---------------------------------------------------------------------


class TestAutoscalePolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="min_workers"):
            AutoscalePolicy(min_workers=0)
        with pytest.raises(ValueError, match="max_workers"):
            AutoscalePolicy(min_workers=4, max_workers=2)
        with pytest.raises(ValueError, match="queue_low"):
            AutoscalePolicy(queue_low=5.0, queue_high=5.0)
        with pytest.raises(ValueError, match="hysteresis"):
            AutoscalePolicy(hysteresis_rounds=0)
        with pytest.raises(ValueError, match="cooldown"):
            AutoscalePolicy(cooldown_rounds=-1)
        with pytest.raises(ValueError, match="scale_step"):
            AutoscalePolicy(scale_step=0)

    def test_grow_on_queue_band(self):
        policy = AutoscalePolicy(queue_high=4.0, queue_low=1.0, max_workers=8)
        assert policy.signal(num_workers=2, total_queue=20, spread=(8, 12)) == 1

    def test_grow_on_spread(self):
        policy = AutoscalePolicy(queue_high=100.0, queue_low=0.1,
                                 spread_threshold=5)
        assert policy.signal(num_workers=2, total_queue=10, spread=(0, 10)) == 1
        assert policy.signal(num_workers=2, total_queue=10, spread=(4, 6)) == 0

    def test_grow_on_round_wall_time(self):
        policy = AutoscalePolicy(queue_high=100.0, queue_low=0.1,
                                 round_wall_time_ceiling=0.5)
        assert policy.signal(num_workers=2, total_queue=10, spread=(5, 5),
                             round_wall_time=1.0) == 1
        assert policy.signal(num_workers=2, total_queue=10, spread=(5, 5),
                             round_wall_time=0.1) == 0
        # No measurement yet (first round): never a growth signal.
        assert policy.signal(num_workers=2, total_queue=10, spread=(5, 5),
                             round_wall_time=None) == 0

    def test_shrink_on_idle_band(self):
        policy = AutoscalePolicy(queue_high=8.0, queue_low=2.0, min_workers=1)
        assert policy.signal(num_workers=4, total_queue=2, spread=(0, 1)) == -1

    def test_clamped_at_min_and_max(self):
        policy = AutoscalePolicy(min_workers=2, max_workers=4,
                                 queue_high=4.0, queue_low=1.0)
        # At the ceiling a grow signal reads as hold (streaks reset).
        assert policy.signal(num_workers=4, total_queue=100, spread=(20, 30)) == 0
        # At the floor a shrink signal reads as hold.
        assert policy.signal(num_workers=2, total_queue=0, spread=(0, 0)) == 0

    def test_hold_inside_band(self):
        policy = AutoscalePolicy(queue_high=8.0, queue_low=2.0)
        assert policy.signal(num_workers=2, total_queue=10, spread=(4, 6)) == 0


# -- the driver, against a scripted fake cluster ----------------------------------------


class _FakeCluster:
    """Just enough surface for an Autoscaler: LB + membership calls."""

    def __init__(self, queue_lengths):
        self.load_balancer = LoadBalancer(line_count=10)
        self._next_id = 1
        self.round_hook = None
        for length in queue_lengths:
            self.load_balancer.receive_status(
                self._next_id, queue_length=length, useful_instructions=0,
                coverage_bits=0, round_index=0)
            self._next_id += 1
        self.added = []
        self.removed = []

    @property
    def live_worker_ids(self):
        return sorted(self.load_balancer.reports)

    def add_worker(self):
        worker_id = self._next_id
        self._next_id += 1
        self.load_balancer.receive_status(worker_id, queue_length=0,
                                          useful_instructions=0,
                                          coverage_bits=0, round_index=0)
        self.added.append(worker_id)
        return worker_id

    def remove_worker(self, worker_id):
        self.load_balancer.deregister_worker(worker_id)
        self.removed.append(worker_id)

    def set_queues(self, lengths_by_id):
        for worker_id, length in lengths_by_id.items():
            self.load_balancer.reports[worker_id].queue_length = length


def _ticker(scaler, cluster):
    """Advance the autoscaler one round at a time."""
    state = {"round": 0}

    def tick():
        scaler(state["round"], cluster)
        state["round"] += 1

    return tick


class TestAutoscaler:
    def _scaler(self, **kw):
        kw.setdefault("cooldown_rounds", 0)
        kw.setdefault("hysteresis_rounds", 1)
        return Autoscaler(AutoscalePolicy(**kw))

    def test_grows_under_sustained_pressure_only(self):
        cluster = _FakeCluster([20, 20])
        scaler = Autoscaler(AutoscalePolicy(queue_high=4.0, queue_low=1.0,
                                            cooldown_rounds=0,
                                            hysteresis_rounds=3))
        tick = _ticker(scaler, cluster)
        tick(); tick()
        assert cluster.added == []  # hysteresis not yet satisfied
        tick()
        assert len(cluster.added) == 1
        assert scaler.workers_added == 1
        assert scaler.decisions == [(2, "grow", 1)]

    def test_transient_spike_resets_the_streak(self):
        cluster = _FakeCluster([20, 20])
        scaler = Autoscaler(AutoscalePolicy(queue_high=4.0, queue_low=1.0,
                                            cooldown_rounds=0,
                                            hysteresis_rounds=2))
        tick = _ticker(scaler, cluster)
        tick()
        cluster.set_queues({1: 3, 2: 3})  # pressure vanished
        tick()
        cluster.set_queues({1: 20, 2: 20})
        tick()
        assert cluster.added == []  # the streak restarted from scratch

    def test_cooldown_blocks_the_next_action(self):
        cluster = _FakeCluster([20, 20])
        scaler = Autoscaler(AutoscalePolicy(queue_high=4.0, queue_low=1.0,
                                            cooldown_rounds=3,
                                            hysteresis_rounds=1))
        tick = _ticker(scaler, cluster)
        # Initial cooldown guards the ramp-up rounds.
        tick(); tick(); tick()
        assert cluster.added == []
        tick()
        assert len(cluster.added) == 1
        tick(); tick(); tick()  # cooldown again
        assert len(cluster.added) == 1
        tick()
        assert len(cluster.added) == 2

    def test_respects_max_workers(self):
        cluster = _FakeCluster([20, 20])
        scaler = self._scaler(queue_high=4.0, queue_low=1.0, max_workers=3)
        tick = _ticker(scaler, cluster)
        for _ in range(6):
            tick()
        assert len(cluster.live_worker_ids) == 3  # grew 2 -> 3, then clamped

    def test_shrinks_idle_cluster_to_min_removing_emptiest(self):
        cluster = _FakeCluster([0, 5, 0])
        scaler = self._scaler(queue_high=50.0, queue_low=3.0, min_workers=1)
        tick = _ticker(scaler, cluster)
        tick()
        assert cluster.removed == [1]  # smallest queue, lowest id
        tick()  # average 5/2 still under the low-water mark
        assert cluster.removed == [1, 3]
        tick(); tick()
        assert cluster.removed == [1, 3]  # min_workers floor
        assert scaler.workers_removed == 2

    def test_install_chains_after_existing_hook(self):
        cluster = _FakeCluster([20, 20])
        calls = []
        cluster.round_hook = lambda r, c: calls.append(r)
        scaler = self._scaler(queue_high=4.0, queue_low=1.0)
        scaler.install(cluster)
        cluster.round_hook(0, cluster)
        assert calls == [0]
        assert len(cluster.added) == 1  # the autoscaler ran after the hook


# -- in-process integration --------------------------------------------------------------


class TestInProcessAutoscale:
    @pytest.fixture(scope="class")
    def fixed(self):
        test = _buggy_test()
        result = test.run(backend="cluster", workers=4,
                          instructions_per_round=30, limits=LIMITS)
        assert result.exhausted and result.found_bug
        return result

    def test_autoscaled_run_matches_fixed_size_run(self, fixed):
        test = _buggy_test()
        policy = AutoscalePolicy(min_workers=1, max_workers=4,
                                 queue_high=3.0, queue_low=1.0,
                                 cooldown_rounds=1, hysteresis_rounds=1)
        result = test.run(backend="cluster", workers=1,
                          instructions_per_round=30, autoscale=policy,
                          limits=LIMITS)
        assert result.exhausted
        # Deterministic target: elasticity must not change the outcome.
        assert result.paths_completed == fixed.paths_completed
        assert result.covered_lines == fixed.covered_lines
        assert result.bug_summaries() == fixed.bug_summaries()
        # ...but the capacity bill must reflect the ramp-up.
        assert result.workers_added >= 1
        assert result.peak_workers <= 4
        assert result.worker_rounds < fixed.worker_rounds
        trace = result.timeline.worker_count_series()
        assert trace[0] == 1 and max(trace) == result.peak_workers

    def test_autoscale_true_uses_default_policy(self):
        config = ClusterConfig(num_workers=2, autoscale=True)
        assert isinstance(config.autoscale, AutoscalePolicy)
        with pytest.raises(TypeError, match="autoscale"):
            ClusterConfig(autoscale="yes")

    def test_scale_down_of_last_removable_worker(self):
        """Shrinking stops at min_workers=1: the final surviving worker
        absorbs every drained job and finishes alone."""
        test = _buggy_test()
        policy = AutoscalePolicy(min_workers=1, max_workers=4,
                                 queue_high=10_000.0, queue_low=10.0,
                                 cooldown_rounds=0, hysteresis_rounds=1)
        cluster = test.build_cluster(
            ClusterConfig(num_workers=3, instructions_per_round=30,
                          autoscale=policy, drain_chunk=2))
        result = cluster.run(limits=LIMITS)
        assert result.exhausted
        assert result.num_workers == 1
        assert result.workers_removed == 2
        single = test.run(backend="single", limits=ExplorationLimits())
        assert result.paths_completed == single.paths_completed

    def test_autoscaled_threaded_backend(self, fixed):
        test = _buggy_test()
        policy = AutoscalePolicy(min_workers=1, max_workers=3,
                                 queue_high=3.0, queue_low=1.0,
                                 cooldown_rounds=1, hysteresis_rounds=1)
        result = test.run(backend="threaded", workers=1,
                          instructions_per_round=30, autoscale=policy,
                          limits=LIMITS)
        assert result.exhausted
        assert result.paths_completed == fixed.paths_completed
        assert result.workers_added >= 1


# -- incremental drain -------------------------------------------------------------------


class TestIncrementalDrain:
    def test_drain_spans_rounds_without_losing_paths(self):
        """With drain_chunk=1 a removal takes as many rounds as the worker
        had jobs; the worker stays a draining member meanwhile and every
        path still gets explored exactly once."""
        test = _buggy_test()
        cluster = test.build_cluster(
            ClusterConfig(num_workers=3, instructions_per_round=30,
                          drain_chunk=1))
        observed = {"draining_rounds": 0, "removed_at": None,
                    "victim_queue": 0}

        def hook(round_index, cl):
            if observed["removed_at"] is None and round_index >= 3:
                victim = max(cl.workers, key=lambda w: w.queue_length)
                if victim.queue_length >= 3 and len(cl.workers) > 1:
                    observed["removed_at"] = round_index
                    observed["victim_queue"] = victim.queue_length
                    cl.remove_worker(victim.worker_id)
            if cl._draining:
                observed["draining_rounds"] += 1
                ok, message = cl.check_frontier_invariants()
                assert ok, message

        cluster.round_hook = hook
        result = cluster.run(limits=LIMITS)
        assert observed["removed_at"] is not None, \
            "no worker accumulated enough queue; tune the budgets"
        # One job left at remove time; the rest drained round by round.
        assert observed["draining_rounds"] >= observed["victim_queue"] - 2
        assert result.exhausted
        assert result.workers_removed == 1
        assert result.num_workers == 2
        single = test.run(backend="single", limits=ExplorationLimits())
        assert result.paths_completed == single.paths_completed

    def test_empty_worker_departs_immediately(self):
        test = _buggy_test()
        cluster = test.build_cluster(
            ClusterConfig(num_workers=2, instructions_per_round=30))
        # Worker 2 never got jobs yet: removal completes synchronously.
        assert cluster.workers[1].queue_length == 0
        cluster.remove_worker(2)
        assert cluster._draining == []
        assert [w.worker_id for w in cluster._departed] == [2]

    def test_remove_guards_unchanged(self):
        test = _buggy_test()
        cluster = test.build_cluster(ClusterConfig(num_workers=1))
        with pytest.raises(ValueError, match="last worker"):
            cluster.remove_worker(1)
        with pytest.raises(ValueError, match="no live worker"):
            cluster.remove_worker(99)


# -- load balancer hygiene under membership churn ----------------------------------------


class TestMembershipChurnHygiene:
    def test_register_seed_is_overwritten_by_real_status(self):
        lb = LoadBalancer(line_count=10)
        lb.receive_status(1, queue_length=10, useful_instructions=0,
                          coverage_bits=0, round_index=0)
        lb.register_worker(2, queue_length=10)
        assert lb.reports[2].queue_length == 10
        lb.receive_status(2, queue_length=0, useful_instructions=0,
                          coverage_bits=0, round_index=1)
        assert lb.reports[2].queue_length == 0
        # Seeding never clobbers a report that already has ground truth.
        lb.register_worker(2, queue_length=7)
        assert lb.reports[2].queue_length == 0

    def test_add_then_balance_before_first_status(self):
        """Regression: a just-added worker's fabricated zero-length report
        used to skew queue_length_spread() and draw a transfer before the
        balancer had heard from it even once."""
        test = _buggy_test()
        cluster = test.build_cluster(
            ClusterConfig(num_workers=2, instructions_per_round=30))
        cluster.run(limits=ExplorationLimits(max_rounds=4))
        lb = cluster.load_balancer
        lengths_before = {w: lb.reports[w].queue_length
                          for w in lb.worker_ids}
        spread_before = lb.queue_length_spread()
        new_id = cluster.add_worker()
        # The newcomer is seeded with the mean, not zero...
        assert lb.reports[new_id].queue_length == round(
            sum(lengths_before.values()) / len(lengths_before))
        # ...so the spread the autoscaler reads is not skewed to (0, max)...
        low, high = lb.queue_length_spread()
        assert low >= min(min(lengths_before.values()),
                          lb.reports[new_id].queue_length)
        assert (low, high) != (0, spread_before[1]) or spread_before[0] == 0
        # ...and balance() does not fire a transfer at it on fabricated data.
        assert all(command.destination != new_id for command in lb.balance())

    def test_remove_with_inflight_transfer_purges_atomically(self):
        """Regression: a TRANSFER_REQUEST still on the wire naming the
        departing worker must be cancelled with the balancer's estimates
        rolled back, and a JOB_TRANSFER already addressed to it must be
        re-routed with the receiving survivor's estimate credited."""
        test = _buggy_test()
        cluster = test.build_cluster(
            ClusterConfig(num_workers=2, instructions_per_round=30))
        cluster.run(limits=ExplorationLimits(max_rounds=4))
        lb = cluster.load_balancer
        survivor = cluster.workers[0]
        victim = cluster.workers[1].worker_id
        source_id = survivor.worker_id
        assert survivor.queue_length >= 2, "tune budgets: survivor is idle"
        # A transfer decision naming the victim as destination, in flight.
        lb.reports[source_id].queue_length = 8
        lb.reports[victim].queue_length = 0
        (command,) = lb.balance()
        assert command.source == source_id and command.destination == victim
        cluster.transport.send(Message(
            kind=MessageKind.TRANSFER_REQUEST,
            sender=LOAD_BALANCER_ID, recipient=command.source,
            payload={"destination": command.destination,
                     "job_count": command.job_count}))
        debited = lb.reports[source_id].queue_length
        assert debited == 8 - command.job_count
        # And a job tree already on the wire to the victim.
        jobs = survivor.export_jobs(1)
        assert len(jobs) == 1
        cluster.transport.send(Message(
            kind=MessageKind.JOB_TRANSFER, sender=source_id,
            recipient=victim, payload={"jobs": jobs.encode(),
                                       "count": len(jobs)}))

        handed = cluster.remove_worker(victim)
        # Report purged atomically; the cancelled request's estimate rolled
        # back on the source; the re-routed job tree AND the victim's own
        # drained jobs credited to the survivor that received them.
        assert victim not in lb.reports
        assert (lb.reports[source_id].queue_length
                == debited + command.job_count + 1 + handed)
        # No message addressed to the victim survives anywhere.
        assert cluster.transport.pending_count(victim) == 0
        # The re-routed job landed on the survivor, not in the void: the
        # run still explores every path exactly once.
        result = cluster.run(limits=LIMITS)
        assert result.exhausted
        single = test.run(backend="single", limits=ExplorationLimits())
        assert result.paths_completed == single.paths_completed


# -- checkpoint cadence ------------------------------------------------------------------


class TestCheckpointCadence:
    """Both backends snapshot after every N *completed* rounds: the first
    checkpoint lands at round_index == checkpoint_every, on the dot."""

    def test_in_process_first_checkpoint_round(self):
        test = _buggy_test()
        cluster = test.build_cluster(
            ClusterConfig(num_workers=2, instructions_per_round=30,
                          checkpoint_every=3))
        cluster.run(limits=ExplorationLimits(max_rounds=2))
        assert cluster.last_checkpoint is None  # 2 completed rounds < 3
        cluster = test.build_cluster(
            ClusterConfig(num_workers=2, instructions_per_round=30,
                          checkpoint_every=3))
        cluster.run(limits=ExplorationLimits(max_rounds=3))
        assert cluster.last_checkpoint is not None
        assert cluster.last_checkpoint.round_index == 3

    @needs_fork
    def test_process_first_checkpoint_round(self):
        config = dict(num_workers=2, instructions_per_round=40,
                      reply_timeout=1.0, checkpoint_every=3)
        cluster = ProcessCloud9Cluster(
            "test-as-buggy", config=ProcessClusterConfig(**config))
        cluster.run(limits=ExplorationLimits(max_rounds=2))
        assert cluster.last_checkpoint is None
        cluster = ProcessCloud9Cluster(
            "test-as-buggy", config=ProcessClusterConfig(**config))
        cluster.run(limits=ExplorationLimits(max_rounds=3))
        assert cluster.last_checkpoint is not None
        assert cluster.last_checkpoint.round_index == 3


# -- cumulative accounting and self-contained checkpoints across resume ------------------


class TestResumeAccounting:
    def test_checkpoint_round_trips_bugs_and_test_cases(self):
        bug = BugReport(kind=BugKind.ASSERTION_FAILURE, message="boom",
                        state_id=7, line=3, function="main")
        case = TestCase(state_id=7, inputs={"input": b"AAA"}, path_length=12,
                        fork_trace=[0, 1], exit_code=None, is_error=True,
                        error_summary="boom")
        checkpoint = ClusterCheckpoint(
            round_index=2, frontier_paths=[(0,)], coverage_bits=0b1,
            line_count=4, wall_time=1.5,
            bug_reports=[ClusterCheckpoint.encode_bug(bug)],
            test_cases=[ClusterCheckpoint.encode_test_case(case)])
        restored = ClusterCheckpoint.from_json(checkpoint.to_json())
        assert restored.wall_time == 1.5
        (decoded_bug,) = restored.decode_bugs()
        assert decoded_bug.summary() == bug.summary()
        (decoded_case,) = restored.decode_test_cases()
        assert decoded_case.inputs == {"input": b"AAA"}
        assert decoded_case.is_error and decoded_case.fork_trace == [0, 1]

    def _interrupt_after_bug(self, test):
        """Interrupt a checkpointing run one round after the bug is found;
        returns the checkpoint (which must postdate the bug) and the
        partial result."""
        # Scout run: learn when the bug appears and how long the run is.
        scout = test.build_cluster(
            ClusterConfig(num_workers=2, instructions_per_round=60))
        bug_round = {}

        def hook(round_index, cl):
            if "found" not in bug_round and any(w.bugs for w in cl.workers):
                bug_round["found"] = round_index

        scout.round_hook = hook
        scouted = scout.run(limits=LIMITS)
        assert scouted.exhausted and "found" in bug_round
        stop_at = bug_round["found"] + 1
        assert stop_at < scouted.rounds_executed, \
            "bug found on the last round; tune the budgets"
        # The real, deterministic interrupted run.
        cluster = test.build_cluster(
            ClusterConfig(num_workers=2, instructions_per_round=60,
                          checkpoint_every=1))
        partial = cluster.run(limits=ExplorationLimits(max_rounds=stop_at))
        assert partial.bugs, "bug not found before the interruption point"
        assert not partial.exhausted, "tune budgets: run finished early"
        return cluster.last_checkpoint, partial

    def test_resumed_run_reports_cumulative_wall_time_and_precrash_bugs(self):
        test = _buggy_test(buffer_size=4)
        full = test.run(backend="cluster", workers=2,
                        instructions_per_round=60, limits=LIMITS)
        assert full.exhausted and full.found_bug

        checkpoint, partial = self._interrupt_after_bug(test)
        assert checkpoint is not None
        assert checkpoint.wall_time > 0.0
        assert checkpoint.bug_reports, "checkpoint dropped pre-crash bugs"
        assert checkpoint.test_cases

        resumed_cluster = test.build_cluster(
            ClusterConfig(num_workers=2, instructions_per_round=60))
        resumed = resumed_cluster.run(limits=LIMITS, resume_from=checkpoint)
        assert resumed.exhausted
        # Pre-crash bugs survive the resume even though the resumed segment
        # never re-explores the paths that produced them.
        assert resumed.bug_summaries() == full.bug_summaries()
        assert resumed.paths_completed == full.paths_completed
        assert len(resumed.test_cases) == len(full.test_cases)
        # Wall time is cumulative: at least the checkpointed segment's.
        assert resumed.wall_time >= checkpoint.wall_time

    @needs_fork
    def test_process_resume_keeps_precrash_bugs_and_wall_time(self, tmp_path):
        test = specs.resolve_test("test-as-buggy")
        kwargs = dict(instructions_per_round=40, reply_timeout=1.0)
        full = test.run(backend="process", workers=2, limits=LIMITS, **kwargs)
        assert full.exhausted and full.found_bug

        path = str(tmp_path / "ckpt.json")
        rounds = 2
        partial = None
        # The bug lands in the first couple of rounds on this target; walk
        # the interruption point forward until a checkpoint holds it.
        while rounds <= 10:
            partial = test.run(backend="process", workers=2,
                               limits=ExplorationLimits(max_rounds=rounds),
                               checkpoint_every=1, checkpoint_path=path,
                               **kwargs)
            if partial.found_bug and not partial.exhausted:
                break
            rounds += 1
        assert partial is not None and partial.found_bug
        assert not partial.exhausted
        checkpoint = ClusterCheckpoint.load(path)
        assert checkpoint.bug_reports, "checkpoint dropped pre-crash bugs"
        assert checkpoint.wall_time > 0.0

        resumed = test.run(backend="process", workers=2, limits=LIMITS,
                           resume_from=path, **kwargs)
        assert resumed.exhausted
        assert resumed.bug_summaries() == full.bug_summaries()
        assert resumed.paths_completed == full.paths_completed
        assert resumed.wall_time >= checkpoint.wall_time


# -- process-backend autoscaling (also the CI smoke) -------------------------------------


@needs_fork
class TestProcessAutoscale:
    def test_autoscaled_process_run_matches_fixed_and_scales_up(self):
        test = specs.resolve_test("test-as-buggy")
        fixed = test.run(backend="process", workers=2, limits=LIMITS,
                         instructions_per_round=40, reply_timeout=1.0)
        assert fixed.exhausted and fixed.found_bug

        policy = AutoscalePolicy(min_workers=1, max_workers=3,
                                 queue_high=2.0, queue_low=1.0,
                                 cooldown_rounds=1, hysteresis_rounds=1)
        result = test.run(backend="process", workers=1, limits=LIMITS,
                          instructions_per_round=40, reply_timeout=1.0,
                          autoscale=policy, drain_chunk=4)
        assert result.exhausted
        assert result.workers_added >= 1
        assert result.peak_workers <= 3
        assert result.worker_failures == 0
        assert result.paths_completed == fixed.paths_completed
        assert result.covered_lines == fixed.covered_lines
        assert result.bug_summaries() == fixed.bug_summaries()

    def test_retire_on_checkpoint_round_counts_members_once(self):
        """Regression: a worker whose drain completes during the transfer
        phase of a checkpoint round used to be counted twice in that
        checkpoint -- once via its (stale) status reply and once via the
        final results collected at retirement."""
        cluster = ProcessCloud9Cluster(
            "test-as-buggy",
            config=ProcessClusterConfig(num_workers=3,
                                        instructions_per_round=40,
                                        reply_timeout=1.0,
                                        checkpoint_every=1, drain_chunk=1))
        captured = {"ckpts": {}}

        def hook(round_index, cl):
            if "removed" not in captured and round_index >= 2:
                victim = max(cl.handles,
                             key=lambda h: (h.paths_completed,
                                            h.queue_length))
                if (victim.queue_length >= 3 and victim.paths_completed >= 1
                        and len(cl.handles) > 1):
                    captured["removed"] = round_index
                    cl.remove_worker(victim.worker_id)
            if cl.last_checkpoint is not None:
                captured["ckpts"][cl.last_checkpoint.round_index] = \
                    cl.last_checkpoint

        cluster.round_hook = hook
        result = cluster.run(limits=LIMITS)
        assert "removed" in captured, \
            "no victim had paths and queue; tune the budgets"
        assert result.workers_removed == 1
        # Every checkpoint's cumulative counters must agree with the round
        # snapshot taken at the same barrier (which sums each member once).
        mismatches = [
            (snap.round_index, checkpoint.paths_completed,
             snap.paths_completed)
            for snap in result.timeline.snapshots
            for checkpoint in [captured["ckpts"].get(snap.round_index + 1)]
            if checkpoint is not None
            and checkpoint.paths_completed != snap.paths_completed]
        assert not mismatches, \
            "checkpoint double-counted a retiring member: %r" % mismatches

    def test_remove_worker_drains_incrementally_mid_run(self):
        cluster = ProcessCloud9Cluster(
            "test-as-buggy",
            config=ProcessClusterConfig(num_workers=3,
                                        instructions_per_round=40,
                                        reply_timeout=1.0, drain_chunk=1))
        events = {}

        def hook(round_index, cl):
            if "removed" not in events and round_index >= 2:
                victim = max(cl.handles, key=lambda h: h.queue_length)
                if victim.queue_length >= 2 and len(cl.handles) > 1:
                    events["removed"] = victim.worker_id
                    events["queue"] = victim.queue_length
                    cl.remove_worker(victim.worker_id)
            if cl._draining:
                events["saw_draining"] = True

        cluster.round_hook = hook
        result = cluster.run(limits=LIMITS)
        assert "removed" in events, \
            "no worker accumulated enough queue; tune the budgets"
        assert events.get("saw_draining"), \
            "drain completed synchronously despite drain_chunk=1"
        assert result.exhausted
        assert result.workers_removed == 1
        # The drained worker's results still merged into the totals.
        assert events["removed"] in result.worker_stats
        test = specs.resolve_test("test-as-buggy")
        single = test.run(backend="single", limits=ExplorationLimits())
        assert result.paths_completed == single.paths_completed
