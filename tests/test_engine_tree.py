"""Unit tests for the execution tree, node life-cycle, pins and layers."""

from repro.engine.tree import (
    ExecutionTree,
    NodeLife,
    NodePin,
    NodeStatus,
)


class TestNodeLifecycle:
    def test_root_starts_as_materialized_candidate(self):
        tree = ExecutionTree()
        assert tree.root.is_candidate
        assert tree.root.is_materialized

    def test_fig3_transitions(self):
        tree = ExecutionTree()
        node = tree.root.add_child(0)
        node.materialize("state")
        assert node.is_candidate and node.is_materialized
        node.mark_fence()
        assert node.is_fence
        node.mark_candidate()
        node.mark_dead()
        assert node.is_dead
        assert node.state is None  # dead nodes drop their program state

    def test_virtual_to_materialized(self):
        tree = ExecutionTree()
        node = tree.root.add_child(0, status=NodeStatus.VIRTUAL)
        assert node.is_virtual
        node.materialize("state")
        assert node.is_materialized and node.state == "state"

    def test_duplicate_child_rejected(self):
        tree = ExecutionTree()
        tree.root.add_child(0)
        try:
            tree.root.add_child(0)
            assert False, "expected ValueError"
        except ValueError:
            pass


class TestPaths:
    def test_path_from_root_and_descend(self):
        tree = ExecutionTree()
        a = tree.root.add_child(0)
        b = a.add_child(1)
        c = b.add_child(0)
        assert c.path_from_root() == [0, 1, 0]
        assert tree.node_at([0, 1, 0]) is c
        assert tree.node_at([0, 5]) is None
        assert c.root() is tree.root

    def test_ensure_path_creates_virtual_interior(self):
        tree = ExecutionTree()
        leaf = tree.ensure_path([1, 0, 1], status=NodeStatus.VIRTUAL,
                                life=NodeLife.CANDIDATE)
        assert leaf.is_virtual and leaf.is_candidate
        interior = tree.node_at([1])
        assert interior.is_dead and interior.is_virtual

    def test_ensure_path_idempotent(self):
        tree = ExecutionTree()
        first = tree.ensure_path([0, 1])
        second = tree.ensure_path([0, 1])
        assert first is second


class TestCandidateCounts:
    def test_counts_maintained(self):
        tree = ExecutionTree()
        a = tree.root.add_child(0)
        b = tree.root.add_child(1)
        tree.root.mark_dead()
        assert tree.root.candidate_count == 2
        a.mark_dead()
        assert tree.root.candidate_count == 1
        b.mark_fence()
        assert tree.root.candidate_count == 0
        b.mark_candidate()
        assert tree.root.candidate_count == 1

    def test_candidates_listing(self):
        tree = ExecutionTree()
        a = tree.root.add_child(0)
        tree.root.mark_dead()
        assert tree.candidates() == [a]
        assert tree.fences() == []
        a.mark_fence()
        assert tree.fences() == [a]


class TestPinsAndPrune:
    def test_prune_removes_unpinned_dead_leaves(self):
        tree = ExecutionTree()
        a = tree.root.add_child(0)
        b = a.add_child(0)
        b.mark_dead()
        a.mark_dead()
        removed = tree.prune()
        assert removed == 2
        assert tree.node_count() == 1

    def test_pin_protects_path_to_root(self):
        tree = ExecutionTree()
        a = tree.root.add_child(0)
        b = a.add_child(0)
        b.mark_dead()
        a.mark_dead()
        pin = NodePin(b)
        assert tree.prune() == 0
        pin.release()
        assert tree.prune() == 2

    def test_pin_context_manager(self):
        tree = ExecutionTree()
        a = tree.root.add_child(0)
        a.mark_dead()
        with tree.new_pin(a):
            assert tree.prune() == 0
        assert tree.prune() == 1

    def test_candidate_nodes_not_pruned(self):
        tree = ExecutionTree()
        tree.root.add_child(0)
        assert tree.prune() == 0


class TestLayers:
    def test_layer_filtering(self):
        tree = ExecutionTree()
        a = tree.root.add_child(0)
        b = tree.root.add_child(1)
        a.layers.add("states")
        b.layers.add("jobs")
        states = list(tree.root.iter_subtree(layer="states"))
        jobs = list(tree.root.iter_subtree(layer="jobs"))
        assert states == [a]
        assert jobs == [b]

    def test_unfiltered_traversal_is_deterministic(self):
        tree = ExecutionTree()
        a = tree.root.add_child(1)
        b = tree.root.add_child(0)
        order = [n.node_id for n in tree.root.iter_subtree()]
        assert order[0] == tree.root.node_id
        # Children visited in fork-index order regardless of creation order.
        assert order[1] == b.node_id
        assert order[2] == a.node_id

    def test_leaves(self):
        tree = ExecutionTree()
        a = tree.root.add_child(0)
        a.add_child(0)
        leaves = tree.root.leaves()
        assert len(leaves) == 1
