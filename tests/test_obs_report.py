"""The trace report: analysis reductions and the CLI."""

import json

from repro.obs.report import analyze_trace, main, render_report
from repro.obs.trace import Tracer


def _synthetic_events():
    return [
        {"seq": 1, "ts": 0.0, "event": "run_started", "run": "abc",
         "backend": "cluster", "workers": 2, "test": "branchy",
         "line_count": 20},
        {"seq": 2, "ts": 0.1, "event": "round_completed", "run": "abc",
         "round": 0, "coverage_percent": 40.0, "paths": 2, "candidates": 4,
         "workers": 2, "useful": 100, "replay": 0,
         "workers_detail": {"0": {"useful": 60, "replay": 0, "queue": 2},
                            "1": {"useful": 40, "replay": 0, "queue": 2}}},
        {"seq": 3, "ts": 0.15, "event": "job_transferred", "run": "abc",
         "round": 0, "source": 0, "destination": 1, "jobs": 2},
        {"seq": 4, "ts": 0.2, "event": "round_completed", "run": "abc",
         "round": 1, "coverage_percent": 80.0, "paths": 5, "candidates": 1,
         "workers": 2, "useful": 90, "replay": 10,
         "workers_detail": {"0": {"useful": 90, "replay": 10, "queue": 1},
                            "1": {"useful": 0, "replay": 0, "queue": 0}}},
        {"seq": 5, "ts": 0.3, "event": "run_finished", "run": "abc",
         "rounds": 2, "paths": 6, "coverage_percent": 80.0, "bugs": 0,
         "wall_time": 0.3},
    ]


class TestAnalyzeTrace:
    def test_coverage_over_time(self):
        analysis = analyze_trace(_synthetic_events())
        coverage = analysis["coverage_over_time"]
        assert [p["coverage_percent"] for p in coverage] == [40.0, 80.0]
        assert [p["round"] for p in coverage] == [0, 1]

    def test_worker_utilization_sums_round_deltas(self):
        util = analyze_trace(_synthetic_events())["worker_utilization"]
        assert util[0]["useful"] == 150 and util[0]["replay"] == 10
        assert util[0]["total"] == 160
        assert util[0]["idle_rounds"] == 0
        assert util[1]["useful"] == 40
        assert util[1]["idle_rounds"] == 1  # idle in round 1

    def test_timeline_and_summary(self):
        analysis = analyze_trace(_synthetic_events())
        names = [e["event"] for e in analysis["timeline"]]
        assert names == ["run_started", "job_transferred", "run_finished"]
        assert analysis["summary"]["paths"] == 6
        assert analysis["run"]["backend"] == "cluster"
        assert analysis["event_count"] == 5

    def test_empty_trace(self):
        analysis = analyze_trace([])
        assert analysis["coverage_over_time"] == []
        assert analysis["worker_utilization"] == {}
        assert analysis["summary"] == {}


class TestRender:
    def test_sections_present(self):
        text = render_report(analyze_trace(_synthetic_events()))
        for section in ("== Run ==", "== Coverage over time ==",
                        "== Per-worker utilization ==", "== Timeline ==",
                        "== Summary =="):
            assert section in text
        assert "final: 80.0%" in text

    def test_renders_empty_trace(self):
        text = render_report(analyze_trace([]))
        assert "(no round_completed events)" in text


class TestCli:
    def test_text_output(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        # The synthetic events are deliberately minimal (old-trace compat),
        # so keep runtime schema validation out of this writer.
        with Tracer(str(path), validate=False) as tracer:
            for event in _synthetic_events():
                fields = {k: v for k, v in event.items()
                          if k not in ("seq", "ts", "event", "run")}
                tracer.emit(event["event"], **fields)
        assert main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "== Coverage over time ==" in out

    def test_json_output(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        path.write_text("\n".join(json.dumps(e) for e in _synthetic_events())
                        + "\n")
        assert main([str(path), "--json"]) == 0
        analysis = json.loads(capsys.readouterr().out)
        assert analysis["summary"]["rounds"] == 2

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.jsonl")]) == 2
        assert "error" in capsys.readouterr().err
