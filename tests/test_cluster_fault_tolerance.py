"""Fault tolerance, elastic membership and checkpoint/resume (§2.3).

Covers the frontier ledger, worker-death recovery in the process cluster
(SIGKILL mid-run, respawn, failure budgets), clean teardown of stuck and
killed workers, elastic add/remove on both cluster backends, and
checkpoint/resume equivalence with uninterrupted runs.
"""

import multiprocessing
import os
import signal
import threading
import time

import pytest

from repro import lang as L
from repro.api import ExplorationLimits
from repro.cluster.checkpoint import ClusterCheckpoint
from repro.cluster.coordinator import ClusterConfig
from repro.cluster.jobs import Job, JobTree
from repro.cluster.ledger import FrontierLedger, RecoveryJob
from repro.cluster.load_balancer import LoadBalancer, TransferCommand
from repro.cluster.worker import Worker
from repro.distrib import specs
from repro.distrib.cluster import (
    ProcessCloud9Cluster,
    ProcessClusterConfig,
    WorkerProcessError,
)
from repro.distrib.messages import ExploreCommand, SeedCommand
from repro.engine.config import EngineConfig
from repro.testing.symbolic_test import SymbolicTest

from conftest import branchy_program, make_executor

LIMITS = ExplorationLimits(max_rounds=500)

fork_available = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(
    not fork_available,
    reason="runtime-registered specs reach child processes only under fork")


def _buggy_program(buffer_size=3):
    """branchy plus a deterministic assertion bug on the all-'A' paths."""
    return L.program(
        "ft-buggy",
        L.func(
            "main", [],
            L.decl("buf", L.call("cloud9_symbolic_buffer", buffer_size,
                                 L.strconst("input"))),
            L.decl("i", 0),
            L.decl("acc", 0),
            L.while_(L.lt(L.var("i"), buffer_size),
                L.decl("c", L.index(L.var("buf"), L.var("i"))),
                L.if_(L.eq(L.var("c"), ord("A")),
                      [L.assign("acc", L.add(L.var("acc"), 1))],
                      [L.if_(L.eq(L.var("c"), ord("B")),
                             [L.assign("acc", L.add(L.var("acc"), 3))])]),
                L.assign("i", L.add(L.var("i"), 1)),
            ),
            L.assert_(L.ne(L.var("acc"), buffer_size), "all-A input"),
            L.ret(L.var("acc")),
        ),
    )


def _buggy_spec_test(buffer_size=3):
    return SymbolicTest(name="ft-buggy", program=_buggy_program(buffer_size),
                        use_posix_model=False)


def _spin_program():
    """A concrete infinite loop: a worker exploring it never yields."""
    return L.program(
        "spin",
        L.func(
            "main", [],
            L.decl("x", 0),
            L.while_(L.lt(0, 1), L.assign("x", L.add(L.var("x"), 1))),
            L.ret(0),
        ),
    )


def _spin_spec_test():
    return SymbolicTest(name="spin", program=_spin_program(),
                        use_posix_model=False, engine_config=EngineConfig())


# Registered at import time: "fork" children inherit the registry.
specs.register_spec("test-ft-buggy", _buggy_spec_test, replace=True)
specs.register_spec("test-ft-spin", _spin_spec_test, replace=True)


# -- frontier ledger -------------------------------------------------------------------


class TestFrontierLedger:
    def test_seed_then_transfer_tracks_territory(self):
        ledger = FrontierLedger()
        ledger.register(1)
        ledger.register(2)
        ledger.acquire(1, ())
        ledger.cede(1, (0,))
        ledger.acquire(2, (0,))
        assert ledger.recovery_jobs(1) == [RecoveryJob((), fences=((0,),))]
        assert ledger.recovery_jobs(2) == [RecoveryJob((0,))]

    def test_bounced_job_restores_territory(self):
        ledger = FrontierLedger()
        ledger.acquire(1, ())
        ledger.cede(1, (0, 1))
        ledger.acquire(1, (0, 1))  # the job came back
        assert ledger.recovery_jobs(1) == [RecoveryJob(())]

    def test_nested_cede_inside_reacquired_subtree(self):
        ledger = FrontierLedger()
        ledger.acquire(1, ())
        ledger.cede(1, (0,))
        ledger.acquire(1, (0, 1))  # re-imported a piece of the ceded subtree
        jobs = ledger.recovery_jobs(1)
        assert RecoveryJob((), fences=((0,),)) in jobs
        assert RecoveryJob((0, 1)) in jobs

    def test_export_of_whole_owned_root_clears_it(self):
        ledger = FrontierLedger()
        ledger.acquire(1, (2,))
        ledger.cede(1, (2,))
        assert ledger.recovery_jobs(1) == []

    def test_forget_drops_worker(self):
        ledger = FrontierLedger()
        ledger.acquire(3, ())
        ledger.forget(3)
        assert ledger.recovery_jobs(3) == []
        assert 3 not in ledger.worker_ids


# -- checkpoint serialization ----------------------------------------------------------


class TestClusterCheckpoint:
    def _checkpoint(self):
        return ClusterCheckpoint(
            round_index=6,
            frontier_paths=[(0, 1), (2,)],
            coverage_bits=0b1011,
            line_count=10,
            paths_completed=4,
            useful_instructions=100,
            replay_instructions=20,
            worker_stats={1: {"paths_completed": 4}},
            strategy_seeds={1: 1, 2: 2},
            spec_name="test-ft-buggy",
        )

    def test_json_round_trip(self):
        checkpoint = self._checkpoint()
        restored = ClusterCheckpoint.from_json(checkpoint.to_json())
        assert restored == checkpoint
        assert restored.frontier_paths == [(0, 1), (2,)]
        assert restored.strategy_seeds == {1: 1, 2: 2}

    def test_save_load_and_coerce(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        checkpoint = self._checkpoint()
        checkpoint.save(path)
        assert ClusterCheckpoint.load(path) == checkpoint
        assert ClusterCheckpoint.coerce(path) == checkpoint
        assert ClusterCheckpoint.coerce(checkpoint) is checkpoint
        with pytest.raises(TypeError, match="resume_from"):
            ClusterCheckpoint.coerce(42)

    def test_coverage_helpers(self):
        checkpoint = self._checkpoint()
        assert checkpoint.covered_lines() == {0, 1, 3}
        assert checkpoint.coverage_percent == 30.0


# -- load balancer transfer cancellation ------------------------------------------------


class TestCancelTransfer:
    def test_cancel_rolls_back_estimates(self):
        lb = LoadBalancer(line_count=10)
        lb.receive_status(1, queue_length=10, useful_instructions=0,
                          coverage_bits=0)
        lb.receive_status(2, queue_length=0, useful_instructions=0,
                          coverage_bits=0)
        commands = lb.balance()
        assert len(commands) == 1
        command = commands[0]
        assert lb.reports[1].queue_length == 10 - command.job_count
        lb.cancel_transfer(command)
        assert lb.reports[1].queue_length == 10
        assert lb.reports[2].queue_length == 0

    def test_cancel_tolerates_departed_workers(self):
        lb = LoadBalancer(line_count=10)
        lb.receive_status(1, queue_length=4, useful_instructions=0,
                          coverage_bits=0)
        lb.cancel_transfer(TransferCommand(source=9, destination=1, job_count=2))
        assert lb.reports[1].queue_length == 2


# -- fence-aware import (worker side of recovery) ---------------------------------------


class TestRecoveredImport:
    def test_fences_exclude_live_workers_subtrees(self):
        executor = make_executor(branchy_program(2))
        worker = Worker(1, executor, lambda e: e.make_initial_state())
        tree = JobTree.from_jobs([Job(())])
        imported = worker.import_jobs(tree, fence_paths=[(0,)], recovered=True)
        assert imported == 1
        assert worker.stats.jobs_recovered == 1
        while worker.has_work:
            worker.explore(1000)
        # branchy(2) has 9 paths; the fenced first-byte=='A' subtree holds 3.
        assert worker.paths_completed == 6

    def test_recovered_root_import_replays_the_seed(self):
        executor = make_executor(branchy_program(2))
        worker = Worker(1, executor, lambda e: e.make_initial_state())
        worker.import_jobs(JobTree.from_jobs([Job(())]), recovered=True)
        while worker.has_work:
            worker.explore(1000)
        assert worker.paths_completed == 9

    def test_recovery_into_entangled_tree_counts_each_path_once(self):
        """Regression for the deep-spine recovery bugs: the survivor's tree
        holds replay fence shells *inside* the dead worker's territory (for
        jobs the dead worker once ceded back) plus its own explored work at
        the fence paths.  Recovery must re-explore exactly the non-fenced
        part -- the old code either skipped the fence shells (losing the
        dead worker's completed paths) or revived the survivor's completed
        subtrees (counting them twice)."""
        from repro.targets import printf
        test = printf.make_symbolic_test(format_length=2)
        single = test.run(backend="single").paths_completed

        def mkworker(worker_id):
            return Worker(worker_id, test.build_executor(),
                          test.build_initial_state)

        w1, w2 = mkworker(1), mkworker(2)
        w1.seed()
        # Grow a deep candidate D and hand its whole subtree to w2.
        deep = None
        while w1.has_work and deep is None:
            w1.explore(40)
            candidates = [p for p in w1.frontier_paths() if len(p) >= 8]
            if candidates:
                deep = sorted(candidates)[-1]
        assert deep is not None
        node = next(n for n in w1.candidates.values()
                    if tuple(n.path_from_root()) == deep)
        node.mark_fence()
        w1._remove_candidate(node)
        w2.import_jobs(JobTree.from_jobs([Job(deep)]))
        # w2 explores partway down the spine, ceding deep jobs back to w1;
        # w1 replays them (leaving fence shells on the spine) and finishes.
        for _ in range(4):
            if w2.has_work:
                w2.explore(30)
        ceded_back = w2.export_jobs(3)
        fence_paths = [job.path for job in ceded_back.jobs()]
        assert fence_paths, "w2 had nothing to cede; tune the budgets"
        w1.import_jobs(ceded_back)
        while w1.has_work:
            w1.explore(2000)
        # w2 dies; its territory (root D, minus what it ceded) is requeued.
        w1.import_jobs(JobTree.from_jobs([Job(deep)]),
                       fence_paths=fence_paths, recovered=True)
        while w1.has_work:
            w1.explore(2000)
        assert w1.paths_completed == single
        assert w1.stats.jobs_recovered == 1


# -- process-backend fault tolerance ----------------------------------------------------


def _pconfig(**kw):
    kw.setdefault("num_workers", 2)
    kw.setdefault("instructions_per_round", 40)
    kw.setdefault("reply_timeout", 1.0)
    kw.setdefault("shutdown_timeout", 2.0)
    return ProcessClusterConfig(**kw)


def _kill_hook(target_round=2):
    """A round hook that SIGKILLs the last worker once it has work."""
    killed = {}

    def hook(round_index, cluster):
        if killed or round_index < target_round or len(cluster.handles) < 2:
            return
        victim = cluster.handles[-1]
        if victim.queue_length == 0:
            return  # wait until it owns territory worth recovering
        killed["pid"] = victim.process.pid
        os.kill(victim.process.pid, signal.SIGKILL)

    hook.killed = killed
    return hook


@needs_fork
class TestProcessFaultTolerance:
    @pytest.fixture(scope="class")
    def baseline(self):
        test = specs.resolve_test("test-ft-buggy")
        result = test.run(backend="process", workers=2, limits=LIMITS,
                          instructions_per_round=40, reply_timeout=1.0)
        assert result.exhausted
        assert result.worker_failures == 0
        assert result.found_bug
        return result

    def test_sigkill_between_rounds_recovers_and_matches_baseline(self, baseline):
        cluster = ProcessCloud9Cluster("test-ft-buggy", config=_pconfig())
        hook = _kill_hook()
        cluster.round_hook = hook
        result = cluster.run(limits=LIMITS)
        assert hook.killed, "the victim never owned work; tune the target"
        assert result.worker_failures == 1
        assert result.jobs_recovered > 0
        assert result.exhausted
        # Deterministic target: recovery re-explores the dead worker's
        # territory, so the killed run converges to the crash-free outcome.
        assert result.paths_completed == baseline.paths_completed
        assert (sorted(b.summary() for b in result.bugs)
                == sorted(b.summary() for b in baseline.bugs))
        assert result.covered_lines == baseline.covered_lines
        # The dead worker's last-known counters are kept, separate from totals.
        assert set(result.failed_worker_stats) == {2}

    def test_sigkill_mid_explore_recovers(self, baseline):
        # Big per-round budget: round 0 lasts long enough for the timer to
        # land while the explore replies are still outstanding.
        cluster = ProcessCloud9Cluster(
            "test-ft-buggy", config=_pconfig(instructions_per_round=2000))
        killed = {}
        timers = []

        def kill(pid):
            try:
                os.kill(pid, signal.SIGKILL)
                killed["pid"] = pid
            except ProcessLookupError:  # pragma: no cover - run won the race
                pass

        def hook(round_index, cl):
            if round_index == 0 and not timers and len(cl.handles) == 2:
                timer = threading.Timer(0.003, kill,
                                        (cl.handles[-1].process.pid,))
                timer.start()
                timers.append(timer)

        cluster.round_hook = hook
        result = cluster.run(limits=LIMITS)
        for timer in timers:
            timer.join()
        assert killed, "the kill landed after the run already finished"
        assert result.worker_failures == 1
        assert result.exhausted
        assert result.paths_completed == baseline.paths_completed

    def test_respawn_replaces_the_dead_worker(self, baseline):
        cluster = ProcessCloud9Cluster(
            "test-ft-buggy",
            config=_pconfig(respawn=True, max_worker_failures=3))
        hook = _kill_hook()
        cluster.round_hook = hook
        result = cluster.run(limits=LIMITS)
        assert hook.killed
        assert result.worker_failures == 1
        assert result.respawns == 1
        assert result.num_workers == 2  # back at configured size
        assert result.exhausted
        assert result.paths_completed == baseline.paths_completed
        # The replacement got a fresh id and reported its own final stats.
        assert 3 in result.worker_stats

    def test_late_kill_on_deep_tree_matches_baseline(self):
        """End-to-end variant of the deep-spine regression: printf's tree
        produces long transfer spines; a late kill (after real territory has
        bounced both ways) must still converge to the crash-free outcome."""
        config = _pconfig(instructions_per_round=100)
        baseline = ProcessCloud9Cluster(
            "printf", spec_params={"format_length": 2},
            config=config).run(limits=LIMITS)
        assert baseline.exhausted

        cluster = ProcessCloud9Cluster(
            "printf", spec_params={"format_length": 2},
            config=_pconfig(instructions_per_round=100))
        hook = _kill_hook(target_round=4)
        cluster.round_hook = hook
        result = cluster.run(limits=LIMITS)
        assert hook.killed
        assert result.worker_failures == 1
        assert result.jobs_recovered > 0
        assert result.exhausted
        assert result.paths_completed == baseline.paths_completed
        assert result.covered_lines == baseline.covered_lines

    def test_failure_budget_zero_restores_old_behavior(self):
        cluster = ProcessCloud9Cluster(
            "test-ft-buggy", config=_pconfig(max_worker_failures=0))
        hook = _kill_hook(target_round=1)
        cluster.round_hook = hook
        with pytest.raises(WorkerProcessError, match="failure budget"):
            cluster.run(limits=LIMITS)

    def test_no_orphan_processes_after_recovered_run(self):
        cluster = ProcessCloud9Cluster("test-ft-buggy", config=_pconfig())
        pids = []
        hook = _kill_hook()
        original_hook = hook

        def wrapper(round_index, cl):
            for handle in cl.handles:
                if handle.process.pid not in pids:
                    pids.append(handle.process.pid)
            original_hook(round_index, cl)

        cluster.round_hook = wrapper
        cluster.run(limits=LIMITS)
        assert cluster.handles == []
        assert len(pids) >= 2
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            alive = [pid for pid in pids if _pid_alive(pid)]
            if not alive:
                break
            time.sleep(0.05)
        assert not alive, "worker processes leaked: %r" % alive

    def test_wedged_worker_teardown_escalates(self):
        """A worker stuck in an unbounded explore never reads StopCommand;
        teardown must terminate (or kill) it without leaking processes."""
        config = _pconfig(num_workers=1, shutdown_timeout=0.5)
        cluster = ProcessCloud9Cluster("test-ft-spin", config=config)
        cluster._start_workers()
        handle = cluster.handles[0]
        cluster._send(handle, SeedCommand())
        cluster._receive(handle)
        # An effectively unbounded budget on a concrete infinite loop.
        cluster._send(handle, ExploreCommand(budget=10 ** 9))
        time.sleep(0.2)  # let it get properly stuck
        pid = handle.process.pid
        assert _pid_alive(pid)
        cluster._shutdown_workers()
        assert cluster.handles == []
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline and _pid_alive(pid):
            time.sleep(0.05)
        assert not _pid_alive(pid)


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - different uid
        return True
    # Still a zombie or running: try to reap our own children.
    try:
        os.waitpid(pid, os.WNOHANG)
    except ChildProcessError:
        pass
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    return True


# -- checkpoint / resume ----------------------------------------------------------------


@needs_fork
class TestProcessCheckpointResume:
    def test_resume_reaches_same_final_coverage(self, tmp_path):
        test = specs.resolve_test("test-ft-buggy")
        full = test.run(backend="process", workers=2, limits=LIMITS,
                        instructions_per_round=40, reply_timeout=1.0)
        assert full.exhausted

        path = str(tmp_path / "ckpt.json")
        partial = test.run(backend="process", workers=2,
                           limits=ExplorationLimits(max_rounds=2),
                           instructions_per_round=40, reply_timeout=1.0,
                           checkpoint_every=1, checkpoint_path=path)
        assert not partial.exhausted  # killed mid-way (by budget)
        assert os.path.exists(path)

        resumed = test.run(backend="process", workers=2, limits=LIMITS,
                           instructions_per_round=40, reply_timeout=1.0,
                           resume_from=path)
        assert resumed.exhausted
        assert resumed.resumed_from_round == 2
        assert resumed.coverage_percent == full.coverage_percent
        assert resumed.covered_lines == full.covered_lines
        assert resumed.paths_completed == full.paths_completed

    def test_stale_overlay_interval_does_not_lose_coverage(self, tmp_path):
        """Regression: with status_update_interval > 1 the LB overlay lags;
        checkpoints must fold in the freshly collected coverage bits or
        lines covered on completed paths are lost forever on resume."""
        test = specs.resolve_test("test-ft-buggy")
        kwargs = dict(instructions_per_round=40, reply_timeout=1.0,
                      status_update_interval=3)
        full = test.run(backend="process", workers=2, limits=LIMITS, **kwargs)
        assert full.exhausted

        path = str(tmp_path / "ckpt.json")
        test.run(backend="process", workers=2,
                 limits=ExplorationLimits(max_rounds=2),
                 checkpoint_every=2, checkpoint_path=path, **kwargs)
        resumed = test.run(backend="process", workers=2, limits=LIMITS,
                           resume_from=path, **kwargs)
        assert resumed.exhausted
        assert resumed.covered_lines == full.covered_lines
        assert resumed.paths_completed == full.paths_completed

    def test_checkpoint_carries_identity_and_seeds(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        test = specs.resolve_test("test-ft-buggy")
        test.run(backend="process", workers=2,
                 limits=ExplorationLimits(max_rounds=2),
                 instructions_per_round=40, reply_timeout=1.0,
                 checkpoint_every=1, checkpoint_path=path)
        checkpoint = ClusterCheckpoint.load(path)
        assert checkpoint.spec_name == "test-ft-buggy"
        assert checkpoint.backend == "process"
        assert checkpoint.strategy_seeds == {1: 1, 2: 2}
        assert checkpoint.frontier_paths  # mid-run: work outstanding
        assert checkpoint.line_count == test.program.line_count


class TestInProcessCheckpointResume:
    def test_resume_matches_uninterrupted_run(self):
        test = _buggy_spec_test()
        config = ClusterConfig(num_workers=2, instructions_per_round=30)
        full = test.build_cluster(config).run(limits=LIMITS)
        assert full.exhausted

        interrupted = test.build_cluster(
            ClusterConfig(num_workers=2, instructions_per_round=30,
                          checkpoint_every=2))
        partial = interrupted.run(limits=ExplorationLimits(max_rounds=4))
        checkpoint = interrupted.last_checkpoint
        assert checkpoint is not None and checkpoint.round_index == 4
        assert not partial.exhausted

        resumed_cluster = test.build_cluster(config)
        resumed = resumed_cluster.run(limits=LIMITS, resume_from=checkpoint)
        assert resumed.exhausted
        assert resumed.resumed_from_round == 4
        assert resumed.coverage_percent == full.coverage_percent
        assert resumed.paths_completed == full.paths_completed

    def test_resumed_timeline_counts_checkpointed_paths(self):
        """Regression: the in-process round loop used to count only live
        workers' paths, ignoring the resumed-from base, so max_paths goals
        and timeline snapshots undercounted after a resume."""
        test = _buggy_spec_test()
        interrupted = test.build_cluster(
            ClusterConfig(num_workers=2, instructions_per_round=100,
                          checkpoint_every=2))
        interrupted.run(limits=ExplorationLimits(max_rounds=6))
        checkpoint = interrupted.last_checkpoint
        assert checkpoint is not None and checkpoint.paths_completed > 0

        resumed = test.build_cluster(
            ClusterConfig(num_workers=2, instructions_per_round=100))
        result = resumed.run(limits=ExplorationLimits(max_rounds=1),
                             resume_from=checkpoint)
        assert (result.timeline.snapshots[0].paths_completed
                >= checkpoint.paths_completed)

    def test_resume_via_api_runner(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        test = _buggy_spec_test()
        partial = test.run(backend="cluster", workers=2,
                           instructions_per_round=30,
                           checkpoint_every=1, checkpoint_path=path,
                           limits=ExplorationLimits(max_rounds=3))
        assert not partial.exhausted
        resumed = test.run(backend="cluster", workers=2,
                           instructions_per_round=30,
                           limits=LIMITS, resume_from=path)
        assert resumed.exhausted
        assert resumed.resumed_from_round == 3
        full = test.run(backend="cluster", workers=2,
                        instructions_per_round=30, limits=LIMITS)
        assert resumed.coverage_percent == full.coverage_percent
        assert resumed.paths_completed == full.paths_completed


class TestRunResultPlumbing:
    def test_run_result_carries_recovery_counters(self):
        from repro.api.result import RunResult
        from repro.cluster.coordinator import ClusterResult

        cluster_result = ClusterResult(num_workers=2, worker_failures=1,
                                       jobs_recovered=3, respawns=1,
                                       resumed_from_round=5)
        run_result = RunResult.from_cluster(cluster_result, backend="process",
                                            test_name="x")
        assert run_result.worker_failures == 1
        assert run_result.jobs_recovered == 3
        assert run_result.respawns == 1
        assert run_result.resumed_from_round == 5


# -- elastic membership ------------------------------------------------------------------


class TestInProcessElasticity:
    def _single_baseline(self):
        test = _buggy_spec_test()
        return test.run(backend="single", limits=ExplorationLimits())

    def test_add_worker_between_runs(self):
        test = _buggy_spec_test()
        cluster = test.build_cluster(
            ClusterConfig(num_workers=2, instructions_per_round=30))
        cluster.run(limits=ExplorationLimits(max_rounds=3))
        new_id = cluster.add_worker()
        assert new_id == 3
        result = cluster.run(limits=LIMITS)
        assert result.exhausted
        assert result.num_workers == 3
        assert set(result.worker_stats) == {1, 2, 3}
        assert result.paths_completed == self._single_baseline().paths_completed

    def test_remove_worker_mid_run_keeps_its_results(self):
        test = _buggy_spec_test()
        cluster = test.build_cluster(
            ClusterConfig(num_workers=3, instructions_per_round=30))
        removed = {}

        def hook(round_index, cl):
            if round_index == 3 and not removed:
                victims = [w.worker_id for w in cl.workers]
                removed["id"] = victims[-1]
                cl.remove_worker(victims[-1])

        cluster.round_hook = hook
        result = cluster.run(limits=LIMITS)
        assert removed
        assert result.exhausted
        assert result.num_workers == 2
        # The departed worker's stats and paths still count.
        assert removed["id"] in result.worker_stats
        assert result.paths_completed == self._single_baseline().paths_completed

    def test_remove_worker_guards(self):
        test = _buggy_spec_test()
        cluster = test.build_cluster(ClusterConfig(num_workers=1))
        with pytest.raises(ValueError, match="last worker"):
            cluster.remove_worker(1)
        with pytest.raises(ValueError, match="no live worker"):
            cluster.remove_worker(99)


@needs_fork
class TestProcessElasticity:
    def test_add_then_remove_mid_run(self):
        cluster = ProcessCloud9Cluster("test-ft-buggy", config=_pconfig())
        events = []

        def hook(round_index, cl):
            if round_index == 1 and "added" not in events:
                events.append("added")
                events.append(cl.add_worker())
            elif round_index == 4 and "removed" not in events:
                events.append("removed")
                cl.remove_worker(events[1])

        cluster.round_hook = hook
        result = cluster.run(limits=LIMITS)
        assert events and events[0] == "added" and "removed" in events
        assert result.exhausted
        assert result.worker_failures == 0
        # The guest worker's contributions are merged into the result.
        assert events[1] in result.worker_stats
        test = specs.resolve_test("test-ft-buggy")
        single = test.run(backend="single", limits=ExplorationLimits())
        assert result.paths_completed == single.paths_completed
