"""Unit tests for job encoding, the load balancer, transport and overlays."""

import pytest

from repro.cluster.jobs import Job, JobTree
from repro.cluster.load_balancer import LoadBalancer, TransferCommand
from repro.cluster.overlay import CoverageOverlay, WorkerCoverageView
from repro.cluster.transport import (
    LOAD_BALANCER_ID,
    Message,
    MessageKind,
    Transport,
)

from hypothesis import given, settings, strategies as st


class TestJobTree:
    def test_roundtrip(self):
        jobs = [Job((0, 1, 0)), Job((0, 1, 1)), Job((1,))]
        tree = JobTree.from_jobs(jobs)
        assert sorted(j.path for j in tree.jobs()) == sorted(j.path for j in jobs)

    def test_encode_decode(self):
        jobs = [Job((0, 0)), Job((0, 1)), Job((2, 0, 1))]
        tree = JobTree.from_jobs(jobs)
        decoded = JobTree.decode(tree.encode())
        assert decoded.jobs() == tree.jobs()

    def test_prefix_sharing_reduces_size(self):
        jobs = [Job((0, 1, 2, 3, i)) for i in range(8)]
        tree = JobTree.from_jobs(jobs)
        assert tree.encoded_size() < JobTree.naive_size(jobs)

    def test_empty_tree(self):
        tree = JobTree()
        assert len(tree) == 0
        assert tree.jobs() == []

    def test_len_counts_terminals(self):
        tree = JobTree.from_jobs([Job((0,)), Job((0, 1))])
        assert len(tree) == 2

    @settings(max_examples=50, deadline=None)
    @given(paths=st.lists(st.lists(st.integers(min_value=0, max_value=3),
                                   min_size=1, max_size=6),
                          min_size=1, max_size=10))
    def test_roundtrip_property(self, paths):
        jobs = [Job(tuple(p)) for p in paths]
        tree = JobTree.from_jobs(jobs)
        assert {j.path for j in JobTree.decode(tree.encode()).jobs()} == \
            {j.path for j in jobs}


class TestLoadBalancer:
    def _lb_with_queues(self, queues, delta=1.0):
        lb = LoadBalancer(line_count=10, delta=delta)
        for worker_id, length in queues.items():
            lb.register_worker(worker_id)
            lb.receive_status(worker_id, length, 0, 0)
        return lb

    def test_classification(self):
        lb = self._lb_with_queues({1: 100, 2: 0, 3: 50, 4: 55})
        underloaded, ok, overloaded = lb.classify()
        assert 2 in underloaded
        assert 1 in overloaded

    def test_balance_pairs_extremes(self):
        lb = self._lb_with_queues({1: 100, 2: 0, 3: 50, 4: 52})
        commands = lb.balance()
        assert commands
        command = commands[0]
        assert command.source == 1 and command.destination == 2
        assert command.job_count == 50

    def test_balance_idle_worker_without_statistical_overload(self):
        # With two workers sigma is large: the paper's formula alone never
        # classifies the loaded worker as overloaded, but an idle worker must
        # still receive work.
        lb = self._lb_with_queues({1: 40, 2: 0})
        commands = lb.balance()
        assert len(commands) == 1
        assert commands[0] == TransferCommand(source=1, destination=2, job_count=20)

    def test_no_balance_when_even(self):
        lb = self._lb_with_queues({1: 10, 2: 10, 3: 10})
        assert lb.balance() == []

    def test_no_balance_for_single_worker(self):
        lb = self._lb_with_queues({1: 50})
        assert lb.balance() == []

    def test_balance_respects_min_transfer(self):
        lb = self._lb_with_queues({1: 1, 2: 0})
        assert lb.balance() == []

    def test_disabled_balancer(self):
        lb = self._lb_with_queues({1: 100, 2: 0})
        lb.enabled = False
        assert lb.balance() == []

    def test_transfer_log_records_rounds(self):
        lb = self._lb_with_queues({1: 100, 2: 0})
        lb.balance(round_index=7)
        assert lb.transfer_log[0][0] == 7

    def test_queue_length_spread(self):
        lb = self._lb_with_queues({1: 5, 2: 9})
        assert lb.queue_length_spread() == (5, 9)
        assert lb.total_queue_length() == 14

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            LoadBalancer(line_count=10, delta=0)

    def test_double_balance_does_not_reissue_transfers(self):
        # balance() must adjust its cached queue lengths by the issued job
        # counts: calling it again before fresh status reports arrive used to
        # re-issue the identical transfer and double-drain the source.
        lb = self._lb_with_queues({1: 40, 2: 0})
        first = lb.balance()
        assert first == [TransferCommand(source=1, destination=2, job_count=20)]
        assert lb.reports[1].queue_length == 20
        assert lb.reports[2].queue_length == 20
        assert lb.balance() == []

    def test_balance_estimates_overwritten_by_fresh_status(self):
        lb = self._lb_with_queues({1: 40, 2: 0})
        lb.balance()
        # The source worker reports again (it gave jobs away but also forked
        # new states); ground truth replaces the in-flight estimate.
        lb.receive_status(1, 35, 0, 0)
        lb.receive_status(2, 0, 0, 0)
        commands = lb.balance()
        assert commands == [TransferCommand(source=1, destination=2,
                                            job_count=17)]

    def test_double_balance_many_workers_conserves_total(self):
        lb = self._lb_with_queues({1: 90, 2: 0, 3: 45, 4: 0})
        total_before = lb.total_queue_length()
        for _ in range(3):
            lb.balance()
        assert lb.total_queue_length() == total_before
        assert all(r.queue_length >= 0 for r in lb.reports.values())

    def test_coverage_merging_through_status(self):
        lb = LoadBalancer(line_count=8)
        lb.register_worker(1)
        lb.register_worker(2)
        merged = lb.receive_status(1, 3, 0, 0b0011)
        assert merged == 0b0011
        merged = lb.receive_status(2, 3, 0, 0b1100)
        assert merged == 0b1111
        assert lb.overlay.covered_count == 4


class TestTransport:
    def test_immediate_delivery(self):
        transport = Transport()
        transport.send(Message(MessageKind.STATUS_UPDATE, 1, LOAD_BALANCER_ID))
        assert transport.pending_count(LOAD_BALANCER_ID) == 1
        messages = transport.receive_all(LOAD_BALANCER_ID)
        assert len(messages) == 1
        assert transport.pending_count() == 0

    def test_delayed_delivery(self):
        transport = Transport(delivery_delay_rounds=2)
        transport.send(Message(MessageKind.JOB_TRANSFER, 1, 2))
        assert transport.receive_all(2) == []
        transport.advance_round()
        assert transport.receive_all(2) == []
        transport.advance_round()
        assert len(transport.receive_all(2)) == 1

    def test_work_idle_ignores_status_messages(self):
        transport = Transport()
        transport.send(Message(MessageKind.STATUS_UPDATE, 1, LOAD_BALANCER_ID))
        assert transport.work_idle
        transport.send(Message(MessageKind.JOB_TRANSFER, 1, 2))
        assert not transport.work_idle

    def test_message_and_byte_counters(self):
        transport = Transport()
        transport.send(Message(MessageKind.JOB_TRANSFER, 1, 2), size_hint=10)
        transport.send(Message(MessageKind.JOB_TRANSFER, 2, 1), size_hint=5)
        assert transport.messages_sent == 2
        assert transport.bytes_sent == 15


class TestCoverageOverlay:
    def test_worker_view_and_global_merge(self):
        overlay = CoverageOverlay(line_count=8)
        view1 = WorkerCoverageView(8)
        view2 = WorkerCoverageView(8)
        view1.cover([0, 1])
        view2.cover([2])
        merged = overlay.merge_from_worker(view1.snapshot_bits())
        merged = overlay.merge_from_worker(view2.snapshot_bits())
        assert overlay.covered_count == 3
        new_for_2 = view2.merge_global(merged)
        assert new_for_2 == {0, 1}
        assert view2.known_covered() == {0, 1, 2}

    def test_local_growth_is_not_reported_as_global_news(self):
        """Regression: merge_global used to OR the local vector into the
        global view before comparing counts, so purely local growth was
        misreported as LB-driven change (while the returned set, computed
        against local only, could simultaneously be empty)."""
        view = WorkerCoverageView(8)
        view.cover([0, 1])
        # The LB echoes back exactly what this worker reported: no news.
        assert view.merge_global(view.snapshot_bits()) == set()

    def test_returned_lines_exclude_previously_received_global(self):
        view = WorkerCoverageView(8)
        assert view.merge_global(0b0011) == {0, 1}
        # A later vector repeating lines 0-1 only brings line 2 as news.
        assert view.merge_global(0b0111) == {2}
        view.cover([7])
        assert view.merge_global(0b0111) == set()
        assert view.known_covered() == {0, 1, 2, 7}

    def test_merge_is_monotone(self):
        overlay = CoverageOverlay(line_count=8)
        overlay.merge_from_worker(0b1)
        before = overlay.covered_count
        overlay.merge_from_worker(0b1)
        assert overlay.covered_count == before
