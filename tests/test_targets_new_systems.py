"""Tests for the Table-4 target models added on top of the case-study set:
ghttpd, Apache httpd, rsync, pbzip and libevent."""

import pytest

from repro.engine import BugKind
from repro.targets import ghttpd, httpd, libevent, pbzip, rsync


class TestGhttpd:
    def test_concrete_request_is_served(self):
        result = ghttpd.make_concrete_test().run_single()
        assert result.paths_completed >= 1
        assert result.test_cases[0].exit_code == 1
        assert not result.bugs

    def test_concrete_unknown_path_is_not_found(self):
        result = ghttpd.make_concrete_test(path=b"/nope").run_single()
        assert result.test_cases[0].exit_code == 2
        assert not result.bugs

    def test_long_concrete_path_overflows_only_vulnerable_version(self):
        vulnerable = ghttpd.make_concrete_test(
            version=ghttpd.VERSION_VULNERABLE, path=b"/missing.html").run_single()
        fixed = ghttpd.make_concrete_test(
            version=ghttpd.VERSION_FIXED, path=b"/missing.html").run_single()
        assert any(b.kind == BugKind.MEMORY_ERROR for b in vulnerable.bugs)
        assert not fixed.bugs

    def test_fixed_version_never_overflows(self):
        test = ghttpd.make_symbolic_test(version=ghttpd.VERSION_FIXED,
                                         path_length=10)
        result = test.run_single(max_steps=6000)
        assert not any(b.kind == BugKind.MEMORY_ERROR for b in result.bugs)

    def test_vulnerable_version_overflows_on_long_path(self):
        test = ghttpd.make_symbolic_test(version=ghttpd.VERSION_VULNERABLE,
                                         path_length=10)
        result = test.run_single(max_steps=20000, strategy="dfs")
        memory_bugs = [b for b in result.bugs if b.kind == BugKind.MEMORY_ERROR]
        assert memory_bugs, "the log-buffer overflow was not found"

    def test_overflow_reproducer_is_a_long_slash_path(self):
        test = ghttpd.make_symbolic_test(version=ghttpd.VERSION_VULNERABLE,
                                         path_length=10)
        result = test.run_single(max_steps=20000, strategy="dfs")
        memory_bugs = [b for b in result.bugs if b.kind == BugKind.MEMORY_ERROR]
        assert memory_bugs
        bug = memory_bugs[0]
        assert bug.test_case is not None
        path_bytes = bug.test_case.inputs.get("path")
        assert path_bytes is not None
        # The reproducer starts with '/' and has more non-terminator bytes
        # than the log buffer can hold.
        assert path_bytes[0:1] == b"/"


class TestHttpd:
    def test_concrete_request_parses(self):
        result = httpd.make_concrete_test(header_value=b"c7").run_single()
        assert result.test_cases[0].exit_code == 3
        assert not result.bugs

    def test_concrete_request_high_compression_level(self):
        result = httpd.make_concrete_test(header_value=b"c12").run_single()
        assert result.test_cases[0].exit_code == 2

    def test_symbolic_header_explores_every_mode(self):
        test = httpd.make_symbolic_header_test(value_length=2)
        result = test.run_single(max_steps=20000)
        codes = {tc.exit_code for tc in result.test_cases}
        # All three recognised modes plus the unknown-mode fallback appear.
        assert {1, 7}.issubset(codes)
        assert codes & {2, 3}
        assert codes & {5, 6}

    def test_symbolic_header_finds_division_by_zero_in_buggy_version(self):
        test = httpd.make_symbolic_header_test(value_length=2, buggy=True)
        result = test.run_single(max_steps=20000)
        assert any(b.kind == BugKind.DIVISION_BY_ZERO for b in result.bugs)

    def test_fixed_extension_has_no_division_by_zero(self):
        test = httpd.make_symbolic_header_test(value_length=2, buggy=False)
        result = test.run_single(max_steps=20000)
        assert not any(b.kind == BugKind.DIVISION_BY_ZERO for b in result.bugs)

    def test_fragmented_request_still_parses(self):
        for pattern in ([7, 40], [1] * 5 + [42], [13, 13, 21]):
            test = httpd.make_fragmentation_test(pattern, header_value=b"n")
            result = test.run_single()
            assert result.test_cases[0].exit_code == 1, pattern
            assert not result.bugs

    def test_fault_injection_forks_read_failures(self):
        test = httpd.make_fault_injection_test(header_value=b"n")
        result = test.run_single(max_steps=20000)
        # With fault injection the request may be cut short (exit 200/201/255
        # family) as well as fully parsed (exit 1).
        codes = {tc.exit_code for tc in result.test_cases}
        assert 1 in codes
        assert len(codes) > 1
        assert result.paths_completed > 1


class TestRsync:
    def test_identical_files_produce_copy_only_delta(self):
        result = rsync.make_concrete_test().run_single()
        # Two blocks, two COPY tokens, two bytes each.
        assert result.test_cases[0].exit_code == 4
        assert not result.bugs

    def test_fully_different_file_still_reconstructs(self):
        result = rsync.make_concrete_test(new=b"zzzzzzzz").run_single()
        assert not result.bugs
        # Every byte became a literal: 2 bytes per input byte.
        assert result.test_cases[0].exit_code == 16

    def test_reconstruction_invariant_holds_for_symbolic_byte(self):
        test = rsync.make_symbolic_test(symbolic_bytes=1)
        result = test.run_single(max_steps=60000)
        assert result.paths_completed > 1
        assert not result.bugs, [str(b) for b in result.bugs]

    def test_length_mismatch_is_rejected(self):
        with pytest.raises(ValueError):
            rsync.make_concrete_test(new=b"short")


class TestPbzip:
    def test_concrete_compression_roundtrip(self):
        result = pbzip.make_concrete_test(contents=b"aaabbb").run_single()
        assert not result.bugs
        # Both blocks are single runs: (3,'a') and (3,'b') -> 4 output bytes.
        assert result.test_cases[0].exit_code == 4

    def test_incompressible_input_roundtrip(self):
        result = pbzip.make_concrete_test(contents=b"abcdef").run_single()
        assert not result.bugs
        assert result.test_cases[0].exit_code == 12

    def test_symbolic_byte_roundtrip_all_paths(self):
        test = pbzip.make_symbolic_test(contents=b"aaabbb", symbolic_bytes=1)
        result = test.run_single(max_steps=80000)
        assert result.paths_completed >= 2
        assert not result.bugs, [str(b) for b in result.bugs]

    def test_wrong_size_input_is_rejected(self):
        with pytest.raises(ValueError):
            pbzip.make_concrete_test(contents=b"ab")


class TestLibevent:
    def test_concrete_dispatch_fires_both_events(self):
        result = libevent.make_concrete_test().run_single()
        assert not result.bugs
        assert result.test_cases[0].exit_code == 2

    def test_symbolic_trigger_covers_both_dispatch_counts(self):
        test = libevent.make_symbolic_test()
        result = test.run_single(max_steps=30000)
        assert not result.bugs, [str(b) for b in result.bugs]
        codes = {tc.exit_code for tc in result.test_cases}
        assert codes == {1, 2}

    def test_dispatcher_invariants_hold_on_all_paths(self):
        test = libevent.make_symbolic_test()
        result = test.run_single(max_steps=30000)
        assert result.paths_completed >= 2
        assert not any(b.kind == BugKind.ASSERTION_FAILURE for b in result.bugs)
