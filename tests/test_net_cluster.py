"""End-to-end loopback TCP clusters (the ``"tcp"`` backend, :mod:`repro.net`).

The socket transport must be invisible to the protocol: a 2-worker TCP
cluster on 127.0.0.1 explores exactly what the mp-queue backend explores
(paths, coverage, bugs), a SIGKILLed agent flows through the same frontier
ledger recovery as a killed local process, and elastic growth admits agents
from the pending-connections pool instead of forking.
"""

import multiprocessing
import os
import signal
import time

import pytest

from repro import lang as L
from repro.api import ExplorationLimits
from repro.cluster.autoscale import AutoscalePolicy
from repro.distrib import specs
from repro.distrib.cluster import (
    ProcessCloud9Cluster,
    ProcessClusterConfig,
    WorkerProcessError,
)
from repro.net.agent import _local_agent_main, main as agent_main
from repro.net.framing import DEFAULT_MAX_FRAME_SIZE
from repro.testing.symbolic_test import SymbolicTest

LIMITS = ExplorationLimits(max_rounds=500)

fork_available = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(
    not fork_available,
    reason="runtime-registered specs reach child processes only under fork")


def _buggy_program(buffer_size=3):
    """branchy plus a deterministic assertion bug on the all-'A' paths."""
    return L.program(
        "net-buggy",
        L.func(
            "main", [],
            L.decl("buf", L.call("cloud9_symbolic_buffer", buffer_size,
                                 L.strconst("input"))),
            L.decl("i", 0),
            L.decl("acc", 0),
            L.while_(L.lt(L.var("i"), buffer_size),
                L.decl("c", L.index(L.var("buf"), L.var("i"))),
                L.if_(L.eq(L.var("c"), ord("A")),
                      [L.assign("acc", L.add(L.var("acc"), 1))],
                      [L.if_(L.eq(L.var("c"), ord("B")),
                             [L.assign("acc", L.add(L.var("acc"), 3))])]),
                L.assign("i", L.add(L.var("i"), 1)),
            ),
            L.assert_(L.ne(L.var("acc"), buffer_size), "all-A input"),
            L.ret(L.var("acc")),
        ),
    )


def _buggy_spec_test(buffer_size=3):
    return SymbolicTest(name="net-buggy", program=_buggy_program(buffer_size),
                        use_posix_model=False)


# Registered at import time: "fork" children inherit the registry.
specs.register_spec("test-net-buggy", _buggy_spec_test, replace=True)


def _tcp_config(**kw):
    kw.setdefault("transport", "tcp")
    kw.setdefault("num_workers", 2)
    kw.setdefault("instructions_per_round", 40)
    kw.setdefault("reply_timeout", 1.0)
    kw.setdefault("shutdown_timeout", 2.0)
    kw.setdefault("agent_wait_timeout", 20.0)
    return ProcessClusterConfig(**kw)


def _dial_agents(cluster, count):
    """Start external agent processes pointed at the cluster's listener."""
    host, port = cluster.listen_address
    ctx = multiprocessing.get_context("fork")
    agents = []
    for _ in range(count):
        process = ctx.Process(
            target=_local_agent_main,
            args=("%s:%d" % (host, port), (), DEFAULT_MAX_FRAME_SIZE),
            daemon=True)
        process.start()
        agents.append(process)
    return agents


def _reap_agents(agents):
    for process in agents:
        process.join(timeout=5.0)
        if process.is_alive():
            process.kill()
            process.join(timeout=5.0)


def _kill_hook(target_round=2):
    """A round hook that SIGKILLs the last worker's agent once it has work."""
    killed = {}

    def hook(round_index, cluster):
        if killed or round_index < target_round or len(cluster.handles) < 2:
            return
        victim = cluster.handles[-1]
        if victim.queue_length == 0:
            return  # wait until it owns territory worth recovering
        killed["pid"] = victim.process.pid
        os.kill(victim.process.pid, signal.SIGKILL)

    hook.killed = killed
    return hook


def _assert_matches(result, baseline):
    """The §4 determinism bar: identical exploration outcome."""
    assert result.paths_completed == baseline.paths_completed
    assert result.covered_lines == baseline.covered_lines
    assert (sorted(b.summary() for b in result.bugs)
            == sorted(b.summary() for b in baseline.bugs))


@needs_fork
class TestTcpEquivalence:
    @pytest.fixture(scope="class")
    def mp_baseline(self):
        test = specs.resolve_test("test-net-buggy")
        result = test.run(backend="process", workers=2, limits=LIMITS,
                          instructions_per_round=40, reply_timeout=1.0)
        assert result.exhausted
        assert result.worker_failures == 0
        assert result.found_bug
        return result

    def test_spawned_loopback_agents_match_mp_backend(self, mp_baseline):
        """The CI clean smoke: self-contained TCP cluster, zero failures,
        byte-identical exploration outcome vs the mp-queue transport."""
        cluster = ProcessCloud9Cluster(
            "test-net-buggy", config=_tcp_config(spawn_local_agents=True))
        result = cluster.run(limits=LIMITS)
        assert result.exhausted
        assert result.worker_failures == 0
        assert result.heartbeat_misses == 0
        _assert_matches(result, mp_baseline)

    def test_external_agents_match_mp_backend(self, mp_baseline):
        """Same run, but the agents dial in as separate processes -- the
        cross-machine topology, folded onto 127.0.0.1."""
        cluster = ProcessCloud9Cluster("test-net-buggy", config=_tcp_config())
        agents = _dial_agents(cluster, 2)
        try:
            result = cluster.run(limits=LIMITS)
        finally:
            _reap_agents(agents)
        assert result.exhausted
        assert result.worker_failures == 0
        _assert_matches(result, mp_baseline)

    @pytest.mark.parametrize("spec_name,spec_params,options", [
        ("printf", {"format_length": 2}, {}),
        ("testcmd", {}, {"instructions_per_round": 500, "max_rounds": 60}),
    ])
    def test_paper_workloads_match_mp_backend(self, spec_name, spec_params,
                                              options):
        """The §5 workloads explore identically over both carriers."""
        options = dict(options)
        limits = ExplorationLimits(
            max_rounds=options.pop("max_rounds", LIMITS.max_rounds))
        test = specs.resolve_test(spec_name, **spec_params)
        baseline = test.run(backend="process", workers=2, limits=limits,
                            reply_timeout=1.0, **options)
        result = test.run(backend="tcp", workers=2, limits=limits,
                          spawn_local_agents=True, reply_timeout=1.0,
                          shutdown_timeout=2.0, **options)
        assert baseline.exhausted and result.exhausted
        assert result.worker_failures == 0
        _assert_matches(result, baseline)


@needs_fork
class TestTcpFaultTolerance:
    @pytest.fixture(scope="class")
    def mp_baseline(self):
        test = specs.resolve_test("test-net-buggy")
        result = test.run(backend="process", workers=2, limits=LIMITS,
                          instructions_per_round=40, reply_timeout=1.0)
        assert result.exhausted
        return result

    def test_sigkill_agent_recovers_and_matches_baseline(self, mp_baseline):
        """The CI kill smoke: a SIGKILLed agent is detected at the transport
        (EOF or heartbeat silence -- there is no Process.is_alive() across a
        socket), its territory is requeued via the frontier ledger, and the
        run converges to the crash-free outcome."""
        cluster = ProcessCloud9Cluster(
            "test-net-buggy", config=_tcp_config(spawn_local_agents=True))
        hook = _kill_hook()
        cluster.round_hook = hook
        result = cluster.run(limits=LIMITS)
        assert hook.killed, "the victim never owned work; tune the target"
        assert result.worker_failures == 1
        assert result.jobs_recovered > 0
        assert result.exhausted
        _assert_matches(result, mp_baseline)

    def test_respawn_admits_a_replacement_agent(self, mp_baseline):
        cluster = ProcessCloud9Cluster(
            "test-net-buggy",
            config=_tcp_config(spawn_local_agents=True, respawn=True,
                               max_worker_failures=3))
        hook = _kill_hook()
        cluster.round_hook = hook
        result = cluster.run(limits=LIMITS)
        assert hook.killed
        assert result.worker_failures == 1
        assert result.respawns == 1
        assert result.agents_reconnected == 1  # the replacement dialed in
        assert result.num_workers == 2  # back at configured size
        assert result.exhausted
        _assert_matches(result, mp_baseline)

    def test_no_agent_dials_in_fails_fast_with_dial_hint(self):
        cluster = ProcessCloud9Cluster(
            "test-net-buggy", config=_tcp_config(agent_wait_timeout=0.5))
        started = time.monotonic()
        with pytest.raises(WorkerProcessError,
                           match="python -m repro.net.agent"):
            cluster.run(limits=LIMITS)
        assert time.monotonic() - started < 15.0


@needs_fork
class TestTcpElasticity:
    def test_add_worker_admits_a_pending_agent(self):
        """Scale-up on TCP is an *admission*: the third agent waits in the
        pending pool until the round hook asks for it."""
        cluster = ProcessCloud9Cluster("test-net-buggy", config=_tcp_config())
        agents = _dial_agents(cluster, 3)
        added = {}

        def hook(round_index, cl):
            if added or round_index < 2:
                return
            added["worker_id"] = cl.add_worker()

        cluster.round_hook = hook
        try:
            result = cluster.run(limits=LIMITS)
        finally:
            _reap_agents(agents)
        assert added
        assert result.workers_added == 1
        assert result.agents_reconnected == 1
        assert result.peak_workers == 3
        assert result.exhausted
        assert result.worker_failures == 0

    def test_add_worker_with_empty_pool_fails_fast(self):
        """Mid-run growth must not stall the round for agent_wait_timeout
        when nobody has dialed in -- it refuses immediately."""
        cluster = ProcessCloud9Cluster("test-net-buggy", config=_tcp_config())
        agents = _dial_agents(cluster, 2)
        refusal = {}

        def hook(round_index, cl):
            if refusal or round_index < 2:
                return
            started = time.monotonic()
            try:
                cl.add_worker()
            except WorkerProcessError as exc:
                refusal["message"] = str(exc)
                refusal["elapsed"] = time.monotonic() - started

        cluster.round_hook = hook
        try:
            result = cluster.run(limits=LIMITS)
        finally:
            _reap_agents(agents)
        assert "no pending agent" in refusal["message"]
        assert refusal["elapsed"] < 5.0
        assert result.exhausted
        assert result.worker_failures == 0
        assert result.workers_added == 0

    def test_autoscaler_grow_without_pending_agents_is_a_noop(self):
        """An aggressive grow policy over an empty pool must neither kill
        the run nor stall it: Autoscaler._grow swallows the refusal."""
        policy = AutoscalePolicy(min_workers=2, max_workers=4,
                                 queue_low=0.01, queue_high=0.5,
                                 hysteresis_rounds=1, cooldown_rounds=0)
        cluster = ProcessCloud9Cluster(
            "test-net-buggy", config=_tcp_config(autoscale=policy))
        agents = _dial_agents(cluster, 2)
        try:
            result = cluster.run(limits=LIMITS)
        finally:
            _reap_agents(agents)
        assert result.exhausted
        assert result.worker_failures == 0
        assert result.workers_added == 0  # nothing to admit, nothing added


@needs_fork
class TestTcpApiAndLifecycle:
    def test_backend_tcp_through_symbolic_test_run(self):
        test = specs.resolve_test("test-net-buggy")
        result = test.run(backend="tcp", workers=2, limits=LIMITS,
                          spawn_local_agents=True, instructions_per_round=40,
                          reply_timeout=1.0, shutdown_timeout=2.0)
        assert result.backend == "tcp"
        assert result.exhausted
        assert result.found_bug
        assert result.worker_failures == 0

    def test_graceful_shutdown_leaves_no_orphan_agents(self):
        cluster = ProcessCloud9Cluster(
            "test-net-buggy", config=_tcp_config(spawn_local_agents=True))
        result = cluster.run(limits=LIMITS)
        assert result.exhausted
        assert cluster.server is None  # listener closed with the run
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            orphans = [p for p in multiprocessing.active_children()
                       if p.name == "cloud9-agent"]
            if not orphans:
                break
            time.sleep(0.05)
        assert not orphans, "agent processes outlived the run: %r" % orphans

    def test_agent_cli_reports_unreachable_coordinator(self):
        # Port 1 on loopback: nothing listens there, connect is refused.
        assert agent_main(["--connect", "127.0.0.1:1"]) == 1
