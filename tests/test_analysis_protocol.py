"""PROTO: the wire-protocol lock checker, driven on fixture trees.

Fixture trees mirror the real layout (``repro/distrib/messages.py`` etc.)
under a tmp dir; the checker matches modules by path suffix, so nothing
here needs to be importable.
"""

from repro.analysis import protocol
from repro.analysis.core import load_modules

from conftest import write_tree

MESSAGES_V1 = """\
    from dataclasses import dataclass, field
    from typing import Optional

    @dataclass(frozen=True)
    class ExploreCommand:
        budget: int
        report_frontier: bool = False

    @dataclass
    class StatusReply:
        worker_id: int
        queue_length: int
        note: Optional[str] = None

    class NotAMessage:
        x: int = 1
"""

TRANSPORT_V1 = """\
    from dataclasses import dataclass

    PROTOCOL_VERSION = 1

    @dataclass(frozen=True)
    class HelloMessage:
        protocol_version: int
        agent: str = ""
"""


def _tree(tmp_path, messages=MESSAGES_V1, transport=TRANSPORT_V1):
    root = write_tree(tmp_path, {
        "src/repro/distrib/messages.py": messages,
        "src/repro/net/transport.py": transport,
    })
    modules, parse_findings = load_modules([root])
    assert not parse_findings
    return modules


class TestExtraction:
    def test_extracts_fields_types_defaults_and_version(self, tmp_path):
        lock_data, locations = protocol.extract_protocol(_tree(tmp_path))
        assert lock_data["protocol_version"] == 1
        names = set(lock_data["messages"])
        assert "repro.distrib.messages.ExploreCommand" in names
        assert "repro.net.transport.HelloMessage" in names
        assert "repro.distrib.messages.NotAMessage" not in names  # no @dataclass
        fields = lock_data["messages"][
            "repro.distrib.messages.ExploreCommand"]["fields"]
        assert fields == [
            {"name": "budget", "type": "int", "default": None},
            {"name": "report_frontier", "type": "bool", "default": "False"},
        ]
        assert "repro.distrib.messages.StatusReply" in locations

    def test_non_wire_modules_are_ignored(self, tmp_path):
        root = write_tree(tmp_path, {"src/repro/engine/other.py": """\
            from dataclasses import dataclass

            @dataclass
            class NotWire:
                x: int
        """})
        modules, _ = load_modules([root])
        lock_data, _ = protocol.extract_protocol(modules)
        assert lock_data["messages"] == {}
        # A tree with no wire modules at all produces no PROTO findings.
        assert protocol.check(modules, str(tmp_path / "nope.json")) == []


class TestLockVerification:
    def _lock(self, tmp_path, modules):
        lock_path = tmp_path / "protocol.lock.json"
        lock_data, _ = protocol.extract_protocol(modules)
        protocol.write_lock(lock_data, str(lock_path))
        return str(lock_path)

    def test_unchanged_tree_round_trips_clean(self, tmp_path):
        modules = _tree(tmp_path)
        lock_path = self._lock(tmp_path, modules)
        assert protocol.check(modules, lock_path) == []

    def test_missing_lock_is_proto002(self, tmp_path):
        modules = _tree(tmp_path)
        findings = protocol.check(modules, str(tmp_path / "absent.json"))
        assert [f.checker for f in findings] == ["PROTO002"]
        assert "missing" in findings[0].message

    def test_field_added_without_bump_is_proto001(self, tmp_path):
        modules = _tree(tmp_path)
        lock_path = self._lock(tmp_path, modules)
        grown = _tree(tmp_path, messages=MESSAGES_V1.replace(
            "budget: int", "budget: int\n        trace: bool = False"))
        findings = protocol.check(grown, lock_path)
        assert [f.checker for f in findings] == ["PROTO001"]
        assert "'trace' added" in findings[0].message
        assert "bump" in findings[0].hint

    def test_field_removed_and_type_changed_without_bump(self, tmp_path):
        modules = _tree(tmp_path)
        lock_path = self._lock(tmp_path, modules)
        mutated = _tree(tmp_path, messages=MESSAGES_V1
                        .replace("queue_length: int", "queue_length: float")
                        .replace("note: Optional[str] = None\n", ""))
        checkers = sorted(f.checker for f in protocol.check(mutated, lock_path))
        assert checkers == ["PROTO001", "PROTO001"]

    def test_new_message_without_bump_is_proto001(self, tmp_path):
        modules = _tree(tmp_path)
        lock_path = self._lock(tmp_path, modules)
        grown = _tree(tmp_path, messages=MESSAGES_V1 + """\

    @dataclass
    class BrandNewCommand:
        jobs: int
""")
        findings = protocol.check(grown, lock_path)
        assert [f.checker for f in findings] == ["PROTO001"]
        assert "BrandNewCommand" in findings[0].message

    def test_version_bump_without_lock_regen_is_proto002(self, tmp_path):
        modules = _tree(tmp_path)
        lock_path = self._lock(tmp_path, modules)
        bumped = _tree(tmp_path, transport=TRANSPORT_V1.replace(
            "PROTOCOL_VERSION = 1", "PROTOCOL_VERSION = 2"))
        findings = protocol.check(bumped, lock_path)
        assert [f.checker for f in findings] == ["PROTO002"]
        assert "stale" in findings[0].message

    def test_bump_plus_regenerated_lock_is_clean(self, tmp_path):
        grown_messages = MESSAGES_V1.replace(
            "budget: int", "budget: int\n        trace: bool = False")
        bumped = _tree(tmp_path, messages=grown_messages,
                       transport=TRANSPORT_V1.replace(
                           "PROTOCOL_VERSION = 1", "PROTOCOL_VERSION = 2"))
        lock_path = self._lock(tmp_path, bumped)
        assert protocol.check(bumped, lock_path) == []

    def test_non_literal_version_is_proto002(self, tmp_path):
        modules = _tree(tmp_path, transport=TRANSPORT_V1.replace(
            "PROTOCOL_VERSION = 1", "PROTOCOL_VERSION = int('1')"))
        findings = protocol.check(modules, str(tmp_path / "x.json"))
        assert [f.checker for f in findings] == ["PROTO002"]
        assert "plain integer" in findings[0].hint


class TestPicklability:
    def test_lock_and_socket_fields_are_proto003(self, tmp_path):
        modules = _tree(tmp_path, messages="""\
    import socket
    import threading
    from dataclasses import dataclass
    from typing import Callable, Optional

    @dataclass
    class BadCommand:
        guard: threading.Lock
        conn: Optional[socket.socket] = None

    @dataclass
    class WorseReply:
        callback: Callable[[], None] = lambda: None
""")
        findings = [f for f in protocol.check(modules, str(tmp_path / "x.json"))
                    if f.checker == "PROTO003"]
        messages = " ".join(f.message for f in findings)
        assert len(findings) == 3
        assert "Lock" in messages and "socket" in messages
        assert "lambda" in messages or "Callable" in messages

    def test_plain_data_fields_are_clean(self, tmp_path):
        modules = _tree(tmp_path)
        findings = [f for f in protocol.check(modules, str(tmp_path / "x.json"))
                    if f.checker == "PROTO003"]
        assert findings == []
