"""Integration tests for the cluster runtime (workers + LB + transport)."""

import pytest

from repro.cluster import ClusterConfig
from repro.engine import SymbolicExecutor
from repro.posix import install_posix_model
from repro.testing import SymbolicTest

from conftest import branchy_program


def make_cluster(num_workers, buffer_size=2, **config_kwargs):
    program = branchy_program(buffer_size)
    test = SymbolicTest("branchy", program)
    config = ClusterConfig(num_workers=num_workers,
                           instructions_per_round=config_kwargs.pop(
                               "instructions_per_round", 60),
                           **config_kwargs)
    return test.build_cluster(config)


class TestEndToEnd:
    def test_single_worker_cluster_equals_single_engine(self):
        cluster = make_cluster(1)
        result = cluster.run()
        assert result.exhausted
        assert result.paths_completed == 9

    def test_multi_worker_cluster_completes_same_paths(self):
        for workers in (2, 3, 5):
            cluster = make_cluster(workers)
            result = cluster.run()
            assert result.exhausted, workers
            assert result.paths_completed == 9, workers

    def test_work_is_actually_distributed(self):
        cluster = make_cluster(3, buffer_size=3, instructions_per_round=40)
        result = cluster.run()
        assert result.exhausted
        busy_workers = [wid for wid, stats in result.worker_stats.items()
                        if stats.useful_instructions > 0]
        assert len(busy_workers) >= 2
        assert result.total_states_transferred > 0

    def test_frontier_disjointness_invariant_holds_during_run(self):
        cluster = make_cluster(3, buffer_size=3, instructions_per_round=30)
        # Interleave manual round execution with invariant checks.
        for _ in range(10):
            cluster.run(max_rounds=1)
            ok, message = cluster.check_frontier_invariants()
            assert ok, message

    def test_coverage_matches_single_node(self):
        single = make_cluster(1)
        multi = make_cluster(4)
        covered_single = single.run().covered_lines
        covered_multi = multi.run().covered_lines
        assert covered_multi == covered_single

    def test_bugs_found_once_despite_replays(self):
        from repro import lang as L

        program = L.program("buggy", L.func(
            "main", [],
            L.decl("buf", L.call("cloud9_symbolic_buffer", 2, L.strconst("b"))),
            L.assert_(L.ne(L.index(L.var("buf"), 0), 0x13), "unlucky byte"),
            L.if_(L.gt(L.index(L.var("buf"), 1), 10), [L.ret(1)]),
            L.ret(0),
        ))
        test = SymbolicTest("buggy", program)
        result = test.run_cluster(num_workers=3, instructions_per_round=20)
        assert len(result.bugs) == 1

    def test_timeline_records_rounds(self):
        cluster = make_cluster(2)
        result = cluster.run()
        assert len(result.timeline) == result.rounds_executed
        assert result.timeline.useful_work_series()[-1] == result.total_useful_instructions

    def test_goal_coverage_stops_early(self):
        cluster = make_cluster(2, buffer_size=3)
        result = cluster.run(target_coverage_percent=50.0)
        assert result.goal_reached or result.exhausted

    def test_max_paths_goal(self):
        cluster = make_cluster(2, buffer_size=3)
        result = cluster.run(max_paths=5)
        assert result.paths_completed >= 5

    def test_stop_on_first_bug(self):
        from repro import lang as L

        program = L.program("buggy", L.func(
            "main", [],
            L.decl("buf", L.call("cloud9_symbolic_buffer", 1, L.strconst("b"))),
            L.assert_(L.ne(L.index(L.var("buf"), 0), 7), "boom"),
            L.ret(0),
        ))
        test = SymbolicTest("buggy", program)
        result = test.run_cluster(num_workers=2, instructions_per_round=20,
                                  stop_on_first_bug=True)
        assert result.bugs


class TestLoadBalancingBehaviour:
    def test_more_workers_do_not_lose_work(self):
        results = {}
        for workers in (1, 4):
            cluster = make_cluster(workers, buffer_size=3,
                                   instructions_per_round=40)
            results[workers] = cluster.run()
        assert results[1].paths_completed == results[4].paths_completed == 27

    def test_parallelism_reduces_rounds_to_completion(self):
        rounds = {}
        for workers in (1, 4):
            cluster = make_cluster(workers, buffer_size=3,
                                   instructions_per_round=30)
            rounds[workers] = cluster.run().rounds_executed
        assert rounds[4] <= rounds[1]

    def test_disabling_balancing_prevents_distribution(self):
        cluster = make_cluster(4, buffer_size=3, load_balancing_enabled=False)
        result = cluster.run()
        assert result.exhausted
        assert result.total_states_transferred == 0
        busy = [wid for wid, stats in result.worker_stats.items()
                if stats.useful_instructions > 0]
        assert busy == [1]

    def test_balancing_cutoff_mid_run(self):
        cluster = make_cluster(4, buffer_size=3,
                               disable_balancing_after_round=2,
                               instructions_per_round=30)
        result = cluster.run()
        assert result.exhausted
        # Transfers happened only before the cutoff round.
        late_transfers = [snap.states_transferred for snap in result.timeline.snapshots
                          if snap.round_index > 4]
        assert sum(late_transfers) == 0


class TestConfigValidation:
    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            ClusterConfig(num_workers=0)

    def test_invalid_round_budget(self):
        with pytest.raises(ValueError):
            ClusterConfig(instructions_per_round=0)
