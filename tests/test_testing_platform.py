"""Unit tests for the symbolic testing platform (SymbolicTest, suites, reports)."""

import pytest

from repro import lang as L
from repro.engine.config import EngineConfig
from repro.testing import SymbolicTest, SymbolicTestSuite
from repro.testing.report import CoverageAccounting

from conftest import branchy_program, single_branch_program


class TestSymbolicTest:
    def test_run_single(self):
        test = SymbolicTest("t", single_branch_program())
        result = test.run_single()
        assert result.paths_completed == 2

    def test_run_cluster(self):
        test = SymbolicTest("t", branchy_program(2))
        result = test.run_cluster(num_workers=3, instructions_per_round=50)
        assert result.paths_completed == 9

    def test_options_reach_the_state(self):
        test = SymbolicTest("t", single_branch_program(),
                            options={"max_instructions": 10_000})
        executor = test.build_executor()
        state = test.build_initial_state(executor)
        assert state.options["max_instructions"] == 10_000

    def test_setup_callback_runs(self):
        seen = []

        def setup(state):
            seen.append(state.state_id)
            state.options["custom"] = True

        test = SymbolicTest("t", single_branch_program(), setup=setup)
        executor = test.build_executor()
        state = test.build_initial_state(executor)
        assert seen and state.options["custom"]

    def test_with_options_copies(self):
        base = SymbolicTest("t", single_branch_program(), options={"a": 1})
        derived = base.with_options(b=2)
        assert derived.options == {"a": 1, "b": 2}
        assert base.options == {"a": 1}

    def test_engine_config_respected(self):
        config = EngineConfig(max_instructions_per_path=123)
        test = SymbolicTest("t", single_branch_program(), engine_config=config)
        executor = test.build_executor()
        assert executor.config.max_instructions_per_path == 123

    def test_posix_model_optional(self):
        test = SymbolicTest("t", single_branch_program(), use_posix_model=False)
        executor = test.build_executor()
        assert "read" not in executor.natives.names()
        test_posix = SymbolicTest("t", single_branch_program())
        assert "read" in test_posix.build_executor().natives.names()

    def test_line_count_exposed(self):
        test = SymbolicTest("t", single_branch_program())
        assert test.line_count > 0


class TestSuite:
    def _suite(self):
        suite = SymbolicTestSuite("demo-suite")
        suite.add(SymbolicTest("a", single_branch_program()))
        suite.add(SymbolicTest("b", branchy_program(1)))
        return suite

    def test_run_aggregates(self):
        result = self._suite().run()
        assert result.total_paths == 2 + 3
        assert result.combined_coverage_percent > 0
        assert set(result.per_test) == {"a", "b"}

    def test_duplicate_names_rejected(self):
        suite = self._suite()
        with pytest.raises(ValueError):
            suite.add(SymbolicTest("a", single_branch_program()))

    def test_iteration_and_len(self):
        suite = self._suite()
        assert len(suite) == 2
        assert [t.name for t in suite] == ["a", "b"]

    def test_coverage_accounting_from_suite(self):
        result = self._suite().run()
        accounting = result.coverage_accounting(baseline="a")
        rows = accounting.rows()
        assert rows[0]["method"] == "a"
        assert rows[0]["cumulated_percent"] is None
        assert rows[1]["cumulated_percent"] is not None


class TestCoverageAccounting:
    def test_table5_style_bookkeeping(self):
        accounting = CoverageAccounting(line_count=100)
        accounting.add_method("entire test suite", paths=10,
                              covered_lines=range(0, 80), baseline=True)
        accounting.add_method("symbolic packets", paths=500,
                              covered_lines=list(range(40, 85)))
        assert accounting.baseline_percent() == 80.0
        assert accounting.cumulated_percent("symbolic packets") == 85.0
        assert accounting.increase_over_baseline("symbolic packets") == pytest.approx(5.0)

    def test_format_table_mentions_all_methods(self):
        accounting = CoverageAccounting(line_count=10)
        accounting.add_method("base", paths=1, covered_lines=[1], baseline=True)
        accounting.add_method("extra", paths=2, covered_lines=[2])
        table = accounting.format_table()
        assert "base" in table and "extra" in table

    def test_zero_line_count(self):
        accounting = CoverageAccounting(line_count=0)
        accounting.add_method("m", paths=0, covered_lines=[])
        assert accounting.cumulated_percent("m") == 0.0
