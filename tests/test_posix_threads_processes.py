"""Unit tests for the POSIX model: pthreads, synchronization, processes."""

from repro import lang as L
from repro.engine import BugKind
from repro.testing import SymbolicTest


def run_program(entry_body, extra_funcs=(), options=None):
    program = L.program("p", *extra_funcs, L.func("main", [], *entry_body))
    test = SymbolicTest("t", program, options=options or {})
    return test.run_single()


class TestThreads:
    def test_pthread_create_and_join_returns_exit_value(self):
        worker = L.func("worker", ["arg"], L.ret(L.add(L.var("arg"), 5)))
        result = run_program([
            L.decl("tid", L.call("pthread_create", L.strconst("worker"), 37)),
            L.ret(L.call("pthread_join", L.var("tid"))),
        ], extra_funcs=[worker])
        assert not result.bugs
        assert result.test_cases[0].exit_code == 42

    def test_pthread_self(self):
        result = run_program([L.ret(L.call("pthread_self"))])
        assert result.test_cases[0].exit_code == 0

    def test_join_self_fails(self):
        result = run_program([L.ret(L.call("pthread_join", 0))])
        assert result.test_cases[0].exit_code == 0xFFFFFFFF

    def test_pthread_exit_value_visible_to_joiner(self):
        worker = L.func("worker", ["arg"],
                        L.expr_stmt(L.call("pthread_exit", 99)),
                        L.ret(0))
        result = run_program([
            L.decl("tid", L.call("pthread_create", L.strconst("worker"), 0)),
            L.ret(L.call("pthread_join", L.var("tid"))),
        ], extra_funcs=[worker])
        assert result.test_cases[0].exit_code == 99


class TestMutex:
    def test_lock_unlock(self):
        result = run_program([
            L.decl("m", L.call("pthread_mutex_init")),
            L.decl("rc1", L.call("pthread_mutex_lock", L.var("m"))),
            L.decl("rc2", L.call("pthread_mutex_unlock", L.var("m"))),
            L.ret(L.add(L.var("rc1"), L.var("rc2"))),
        ])
        assert result.test_cases[0].exit_code == 0

    def test_unlock_not_owned_is_error(self):
        result = run_program([
            L.decl("m", L.call("pthread_mutex_init")),
            L.ret(L.call("pthread_mutex_unlock", L.var("m"))),
        ])
        assert result.test_cases[0].exit_code == 1  # EPERM

    def test_trylock_on_taken_mutex(self):
        result = run_program([
            L.decl("m", L.call("pthread_mutex_init")),
            L.expr_stmt(L.call("pthread_mutex_lock", L.var("m"))),
            L.ret(L.call("pthread_mutex_trylock", L.var("m"))),
        ])
        assert result.test_cases[0].exit_code == 16  # EBUSY

    def test_mutex_provides_mutual_exclusion(self):
        # The worker increments a shared counter twice under the lock; main
        # (also under the lock) reads a consistent value.
        worker = L.func(
            "worker", ["shared"],
            L.decl("m", L.index(L.var("shared"), 1)),
            L.expr_stmt(L.call("pthread_mutex_lock", L.var("m"))),
            L.store(L.var("shared"), 0, L.add(L.index(L.var("shared"), 0), 1)),
            L.expr_stmt(L.call("cloud9_thread_preempt")),
            L.store(L.var("shared"), 0, L.add(L.index(L.var("shared"), 0), 1)),
            L.expr_stmt(L.call("pthread_mutex_unlock", L.var("m"))),
            L.ret(0),
        )
        result = run_program([
            L.decl("shared", L.call("malloc", 2)),
            L.decl("m", L.call("pthread_mutex_init")),
            L.store(L.var("shared"), 1, L.var("m")),
            L.decl("tid", L.call("pthread_create", L.strconst("worker"), L.var("shared"))),
            L.expr_stmt(L.call("cloud9_thread_preempt")),
            L.expr_stmt(L.call("pthread_mutex_lock", L.var("m"))),
            L.decl("seen", L.index(L.var("shared"), 0)),
            L.expr_stmt(L.call("pthread_mutex_unlock", L.var("m"))),
            L.expr_stmt(L.call("pthread_join", L.var("tid"))),
            L.assert_(L.lor(L.eq(L.var("seen"), 0), L.eq(L.var("seen"), 2)),
                      "observed a torn update"),
            L.ret(L.var("seen")),
        ], extra_funcs=[worker], options={"fork_schedules": True})
        assert not result.bugs
        assert result.paths_completed >= 1

    def test_deadlock_on_double_lock(self):
        result = run_program([
            L.decl("m", L.call("pthread_mutex_init")),
            L.expr_stmt(L.call("pthread_mutex_lock", L.var("m"))),
            L.ret(L.call("pthread_mutex_lock", L.var("m"))),
        ])
        # Self-deadlock is reported as EDEADLK (the model's non-blocking
        # answer for re-locking the owner's mutex).
        assert result.test_cases[0].exit_code == 35


class TestCondVars:
    def test_cond_wait_signal(self):
        signaler = L.func(
            "signaler", ["shared"],
            L.decl("m", L.index(L.var("shared"), 0)),
            L.decl("cv", L.index(L.var("shared"), 1)),
            L.expr_stmt(L.call("pthread_mutex_lock", L.var("m"))),
            L.store(L.var("shared"), 2, 1),
            L.expr_stmt(L.call("pthread_cond_signal", L.var("cv"))),
            L.expr_stmt(L.call("pthread_mutex_unlock", L.var("m"))),
            L.ret(0),
        )
        result = run_program([
            L.decl("shared", L.call("malloc", 3)),
            L.decl("m", L.call("pthread_mutex_init")),
            L.decl("cv", L.call("pthread_cond_init")),
            L.store(L.var("shared"), 0, L.var("m")),
            L.store(L.var("shared"), 1, L.var("cv")),
            L.decl("tid", L.call("pthread_create", L.strconst("signaler"), L.var("shared"))),
            L.expr_stmt(L.call("pthread_mutex_lock", L.var("m"))),
            L.while_(L.eq(L.index(L.var("shared"), 2), 0),
                     L.expr_stmt(L.call("pthread_cond_wait", L.var("cv"), L.var("m")))),
            L.expr_stmt(L.call("pthread_mutex_unlock", L.var("m"))),
            L.expr_stmt(L.call("pthread_join", L.var("tid"))),
            L.ret(L.index(L.var("shared"), 2)),
        ], extra_funcs=[signaler])
        assert not result.bugs
        assert result.test_cases[0].exit_code == 1


class TestSemaphores:
    def test_post_then_wait(self):
        result = run_program([
            L.decl("s", L.call("sem_init", 0)),
            L.expr_stmt(L.call("sem_post", L.var("s"))),
            L.ret(L.call("sem_wait", L.var("s"))),
        ])
        assert result.test_cases[0].exit_code == 0

    def test_trywait_on_empty(self):
        result = run_program([
            L.decl("s", L.call("sem_init", 0)),
            L.ret(L.call("sem_trywait", L.var("s"))),
        ])
        assert result.test_cases[0].exit_code == 16  # EBUSY


class TestProcesses:
    def test_fork_returns_zero_in_child(self):
        result = run_program([
            L.decl("pid", L.call("fork")),
            L.if_(L.eq(L.var("pid"), 0), [
                L.expr_stmt(L.call("exit", 7)),
            ]),
            L.ret(L.call("waitpid", L.var("pid"))),
        ])
        assert not result.bugs
        assert result.test_cases[0].exit_code == 7

    def test_fork_isolates_private_memory(self):
        result = run_program([
            L.decl("buf", L.call("malloc", 1)),
            L.store(L.var("buf"), 0, 1),
            L.decl("pid", L.call("fork")),
            L.if_(L.eq(L.var("pid"), 0), [
                L.store(L.var("buf"), 0, 99),
                L.expr_stmt(L.call("exit", 0)),
            ]),
            L.expr_stmt(L.call("waitpid", L.var("pid"))),
            L.ret(L.index(L.var("buf"), 0)),
        ])
        assert result.test_cases[0].exit_code == 1

    def test_shared_memory_visible_across_fork(self):
        result = run_program([
            L.decl("buf", L.call("malloc", 1)),
            L.expr_stmt(L.call("cloud9_make_shared", L.var("buf"))),
            L.decl("pid", L.call("fork")),
            L.if_(L.eq(L.var("pid"), 0), [
                L.store(L.var("buf"), 0, 55),
                L.expr_stmt(L.call("exit", 0)),
            ]),
            L.expr_stmt(L.call("waitpid", L.var("pid"))),
            L.ret(L.index(L.var("buf"), 0)),
        ])
        assert result.test_cases[0].exit_code == 55

    def test_getpid_differs_between_parent_and_child(self):
        result = run_program([
            L.decl("pid", L.call("fork")),
            L.if_(L.eq(L.var("pid"), 0), [
                L.expr_stmt(L.call("exit", L.call("getpid"))),
            ]),
            L.decl("child_pid", L.call("waitpid", L.var("pid"))),
            L.assert_(L.ne(L.var("child_pid"), L.call("getpid")),
                      "child pid must differ from parent pid"),
            L.ret(L.var("child_pid")),
        ])
        assert not result.bugs

    def test_waitpid_unknown_child(self):
        result = run_program([L.ret(L.call("waitpid", 77))])
        assert result.test_cases[0].exit_code == 0xFFFFFFFF

    def test_fds_inherited_across_fork(self):
        result = run_program([
            L.decl("pair", L.call("malloc", 2)),
            L.expr_stmt(L.call("socketpair", L.var("pair"))),
            L.decl("a", L.index(L.var("pair"), 0)),
            L.decl("b", L.index(L.var("pair"), 1)),
            L.decl("pid", L.call("fork")),
            L.if_(L.eq(L.var("pid"), 0), [
                L.decl("msg", L.strconst("k")),
                L.expr_stmt(L.call("write", L.var("a"), L.var("msg"), 1)),
                L.expr_stmt(L.call("exit", 0)),
            ]),
            L.decl("buf", L.call("malloc", 1)),
            L.expr_stmt(L.call("read", L.var("b"), L.var("buf"), 1)),
            L.expr_stmt(L.call("waitpid", L.var("pid"))),
            L.ret(L.index(L.var("buf"), 0)),
        ])
        assert not result.bugs
        assert result.test_cases[0].exit_code == ord("k")
