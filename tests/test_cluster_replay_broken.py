"""Broken replays (§6): divergence and premature termination are detected,
reported, and survivable at worker level."""

import pytest

from repro.cluster.jobs import JobTree
from repro.cluster.replay import replay_path
from repro.cluster.worker import Worker
from repro.engine import SymbolicExecutor

from conftest import branchy_program, single_branch_program


def _make_worker(program, worker_id=1):
    executor = SymbolicExecutor(program)
    return Worker(worker_id, executor, lambda ex: ex.make_initial_state())


class TestReplayPathBrokenOutcomes:
    def test_divergent_fork_index_reports_divergence(self):
        executor = SymbolicExecutor(single_branch_program())
        outcome = replay_path(executor, lambda ex: ex.make_initial_state(), [7])
        assert outcome.broken
        assert not outcome.succeeded
        assert "divergence" in outcome.reason
        assert outcome.state is None

    def test_path_longer_than_tree_reports_premature_termination(self):
        executor = SymbolicExecutor(single_branch_program())
        outcome = replay_path(executor, lambda ex: ex.make_initial_state(),
                              [0, 0, 0])
        assert outcome.broken
        assert "prematurely" in outcome.reason

    def test_step_budget_exceeded_reports_broken(self):
        executor = SymbolicExecutor(branchy_program(2))
        outcome = replay_path(executor, lambda ex: ex.make_initial_state(),
                              [0, 0], max_steps=1)
        assert outcome.broken
        assert "exceeded" in outcome.reason

    def test_successful_replay_collects_fence_states(self):
        source = _make_worker(branchy_program(2))
        source.seed()
        while source.queue_length and source.queue_length < 3:
            source.explore(5)
        node = max(source.candidates.values(),
                   key=lambda n: len(n.path_from_root()))
        path = node.path_from_root()
        assert path

        executor = SymbolicExecutor(branchy_program(2))
        outcome = replay_path(executor, lambda ex: ex.make_initial_state(), path)
        assert outcome.succeeded
        # Off-path siblings surfaced as fences (explored elsewhere, §3.2).
        assert outcome.fence_states
        for fence_path, fence_state in outcome.fence_states:
            assert tuple(fence_path) != tuple(path)
            assert fence_state.is_running


class TestWorkerSurvivesBrokenReplays:
    def _import_path(self, worker, path):
        tree = JobTree()
        tree.insert(path)
        return worker.import_jobs(tree)

    def test_divergent_job_is_dropped_and_counted(self):
        worker = _make_worker(branchy_program(2))
        worker.seed()
        assert self._import_path(worker, (9, 9)) == 1
        while worker.has_work:
            worker.explore(1000)
        assert worker.stats.broken_replays == 1
        assert worker.paths_completed == 9  # the real subtree still finished
        # The broken node is dead, not a lingering candidate.
        assert all(not n.is_virtual for n in worker.candidates.values())

    def test_multiple_broken_jobs_all_reported(self):
        worker = _make_worker(branchy_program(2))
        worker.seed()
        self._import_path(worker, (9,))
        self._import_path(worker, (0,) * 30)
        while worker.has_work:
            worker.explore(1000)
        assert worker.stats.broken_replays == 2
        assert worker.paths_completed == 9

    def test_broken_replay_work_counts_as_replay_not_useful(self):
        worker = _make_worker(branchy_program(2))
        worker.seed()
        # Drain the real work first so only the bogus job remains.
        while worker.has_work:
            worker.explore(1000)
        useful_before = worker.stats.useful_instructions
        self._import_path(worker, (0,) * 30)
        while worker.has_work:
            worker.explore(1000)
        assert worker.stats.broken_replays == 1
        assert worker.stats.useful_instructions == useful_before
        assert worker.stats.replay_instructions > 0
