"""Tests for the workload targets: memcached suites, printf, test, Coreutils,
producer-consumer."""

import pytest

from repro.engine import BugKind
from repro.targets import coreutils, memcached, printf, prodcons, testcmd


class TestMemcachedSuites:
    def test_concrete_suite_is_single_path(self):
        result = memcached.make_concrete_suite_test().run_single()
        assert result.paths_completed == 1
        assert not result.bugs
        assert result.coverage_percent > 40

    def test_binary_suite_covers_less_than_full_suite(self):
        full = memcached.make_concrete_suite_test().run_single()
        binary = memcached.make_binary_suite_test().run_single()
        assert binary.coverage_percent <= full.coverage_percent

    def test_symbolic_packets_explore_many_paths_and_add_coverage(self):
        concrete = memcached.make_concrete_suite_test().run_single()
        symbolic = memcached.make_symbolic_packets_test(
            num_packets=1, packet_size=6).run_single()
        assert symbolic.exhausted
        assert symbolic.paths_completed > 10
        combined = concrete.covered_lines | symbolic.covered_lines
        assert len(combined) >= len(concrete.covered_lines)

    def test_two_symbolic_packets_multiply_paths(self):
        one = memcached.make_symbolic_packets_test(
            num_packets=1, packet_size=5).run_single()
        two = memcached.make_symbolic_packets_test(
            num_packets=2, packet_size=5).run_single(max_paths=3000)
        assert two.paths_completed > one.paths_completed

    def test_fault_injection_adds_paths_over_concrete_suite(self):
        result = memcached.make_fault_injection_test().run_single(max_paths=200)
        assert result.paths_completed > 1

    def test_concrete_commands_are_well_formed(self):
        for command in memcached.concrete_suite_commands():
            assert len(command) >= memcached.HEADER_SIZE


class TestPrintf:
    def test_exhaustive_exploration_small_format(self):
        test = printf.make_symbolic_test(format_length=2)
        result = test.run_single()
        assert result.exhausted
        assert result.paths_completed > 10
        assert not result.bugs

    def test_coverage_grows_with_exploration(self):
        test = printf.make_symbolic_test(format_length=3)
        shallow = test.run_single(max_paths=5)
        deep = printf.make_symbolic_test(format_length=3).run_single(max_paths=100)
        assert deep.coverage_percent >= shallow.coverage_percent

    def test_format_length_is_configurable(self):
        assert printf.build_program_with_length(7) is not None


class TestTestCmd:
    def test_exhaustive_exploration(self):
        result = testcmd.make_symbolic_test().run_single()
        assert result.exhausted
        assert result.paths_completed > 20
        assert not result.bugs

    def test_numeric_comparison_paths_exist(self):
        result = testcmd.make_symbolic_test().run_single()
        # Some generated test cases must exercise the "-gt"/"-lt" style
        # operators (slot 1 starts with '-').
        assert any(t.input_bytes("argv")[4:5] == b"-" for t in result.test_cases)


class TestCoreutils:
    def test_suite_has_many_utilities(self):
        assert len(coreutils.utility_names()) >= 14

    def test_unknown_utility_rejected(self):
        with pytest.raises(ValueError):
            coreutils.build_utility_program("frobnicate")

    @pytest.mark.parametrize("name", coreutils.utility_names())
    def test_each_utility_explores_cleanly(self, name):
        test = coreutils.make_utility_test(name, input_size=3)
        result = test.run_single(max_paths=300)
        assert result.paths_completed >= 1
        assert not result.bugs
        assert result.coverage_percent > 30

    def test_more_exploration_never_reduces_coverage(self):
        name = coreutils.utility_names()[0]
        small = coreutils.make_utility_test(name, input_size=2).run_single(max_paths=3)
        large = coreutils.make_utility_test(name, input_size=2).run_single(max_paths=100)
        assert large.coverage_percent >= small.coverage_percent


class TestProducerConsumer:
    def test_deterministic_schedule_single_path(self):
        result = prodcons.make_benchmark_test().run_single()
        assert result.paths_completed >= 1
        assert not result.bugs

    def test_invariant_holds_across_interleavings(self):
        test = prodcons.make_benchmark_test(fork_schedules=True, num_items=2)
        result = test.run_single(max_paths=150)
        assert result.paths_completed > 1
        assert not any(b.kind == BugKind.ASSERTION_FAILURE for b in result.bugs)

    def test_exercises_threads_processes_and_sockets(self):
        result = prodcons.make_benchmark_test().run_single()
        # Full functional coverage of the model's plumbing shows up as a high
        # line-coverage figure for this benchmark.
        assert result.coverage_percent > 80
