"""Unit tests for the POSIX model: files, descriptors, symbolic files."""

from repro import lang as L
from repro.engine import BugKind
from repro.posix.api import add_concrete_file, add_symbolic_file
from repro.testing import SymbolicTest

from conftest import make_executor


def run_program(*main_body, setup=None, options=None):
    program = L.program("p", L.func("main", [], *main_body))
    test = SymbolicTest("t", program, setup=setup, options=options or {})
    return test.run_single()


class TestOpenReadWrite:
    def test_open_missing_file_fails(self):
        result = run_program(
            L.decl("fd", L.call("open", L.strconst("/etc/missing"), 0)),
            L.if_(L.eq(L.var("fd"), 0xFFFFFFFF), [L.ret(1)]),
            L.ret(0),
        )
        assert result.test_cases[0].exit_code == 1

    def test_create_write_read_roundtrip(self):
        result = run_program(
            L.decl("fd", L.call("open", L.strconst("/tmp/x"), 0x40)),
            L.decl("data", L.strconst("hi")),
            L.expr_stmt(L.call("write", L.var("fd"), L.var("data"), 2)),
            L.expr_stmt(L.call("lseek", L.var("fd"), 0, 0)),
            L.decl("buf", L.call("malloc", 4)),
            L.decl("n", L.call("read", L.var("fd"), L.var("buf"), 4)),
            L.if_(L.ne(L.var("n"), 2), [L.ret(100)]),
            L.ret(L.index(L.var("buf"), 1)),
        )
        assert result.test_cases[0].exit_code == ord("i")

    def test_read_on_concrete_preloaded_file(self):
        def setup(state):
            add_concrete_file(state, "/etc/config", b"OK")

        result = run_program(
            L.decl("fd", L.call("open", L.strconst("/etc/config"), 0)),
            L.decl("buf", L.call("malloc", 4)),
            L.decl("n", L.call("read", L.var("fd"), L.var("buf"), 4)),
            L.ret(L.index(L.var("buf"), 0)),
            setup=setup,
        )
        assert result.test_cases[0].exit_code == ord("O")

    def test_symbolic_file_contents_fork_reader(self):
        def setup(state):
            add_symbolic_file(state, "/data/input", size=1, label="filedata")

        result = run_program(
            L.decl("fd", L.call("open", L.strconst("/data/input"), 0)),
            L.decl("buf", L.call("malloc", 1)),
            L.expr_stmt(L.call("read", L.var("fd"), L.var("buf"), 1)),
            L.if_(L.gt(L.index(L.var("buf"), 0), 0x7F), [L.ret(1)], [L.ret(0)]),
            setup=setup,
        )
        assert result.paths_completed == 2

    def test_read_past_eof_returns_zero(self):
        def setup(state):
            add_concrete_file(state, "/small", b"a")

        result = run_program(
            L.decl("fd", L.call("open", L.strconst("/small"), 0)),
            L.decl("buf", L.call("malloc", 4)),
            L.expr_stmt(L.call("read", L.var("fd"), L.var("buf"), 4)),
            L.ret(L.call("read", L.var("fd"), L.var("buf"), 4)),
            setup=setup,
        )
        assert result.test_cases[0].exit_code == 0

    def test_lseek_end_and_file_size(self):
        def setup(state):
            add_concrete_file(state, "/f", b"abcdef")

        result = run_program(
            L.decl("fd", L.call("open", L.strconst("/f"), 0)),
            L.decl("pos", L.call("lseek", L.var("fd"), 0, 2)),
            L.ret(L.var("pos")),
            setup=setup,
        )
        assert result.test_cases[0].exit_code == 6

    def test_unlink_then_open_fails(self):
        def setup(state):
            add_concrete_file(state, "/gone", b"x")

        result = run_program(
            L.expr_stmt(L.call("unlink", L.strconst("/gone"))),
            L.decl("fd", L.call("open", L.strconst("/gone"), 0)),
            L.if_(L.eq(L.var("fd"), 0xFFFFFFFF), [L.ret(1)]),
            L.ret(0),
            setup=setup,
        )
        assert result.test_cases[0].exit_code == 1

    def test_close_invalidates_descriptor(self):
        result = run_program(
            L.decl("fd", L.call("open", L.strconst("/tmp/y"), 0x40)),
            L.expr_stmt(L.call("close", L.var("fd"))),
            L.decl("buf", L.call("malloc", 1)),
            L.ret(L.call("read", L.var("fd"), L.var("buf"), 1)),
        )
        assert result.test_cases[0].exit_code == 0xFFFFFFFF

    def test_dup_shares_file(self):
        result = run_program(
            L.decl("fd", L.call("open", L.strconst("/tmp/z"), 0x40)),
            L.decl("fd2", L.call("dup", L.var("fd"))),
            L.decl("data", L.strconst("Q")),
            L.expr_stmt(L.call("write", L.var("fd"), L.var("data"), 1)),
            L.ret(L.call("c9_file_size", L.strconst("/tmp/z"))),
        )
        assert result.test_cases[0].exit_code == 1

    def test_stdout_write_accepted(self):
        result = run_program(
            L.decl("data", L.strconst("log")),
            L.ret(L.call("write", 1, L.var("data"), 3)),
        )
        assert result.test_cases[0].exit_code == 3

    def test_stdin_read_returns_zero(self):
        result = run_program(
            L.decl("buf", L.call("malloc", 4)),
            L.ret(L.call("read", 0, L.var("buf"), 4)),
        )
        assert result.test_cases[0].exit_code == 0


class TestSymbolicSourceIoctl:
    def test_sio_symbolic_makes_reads_symbolic(self):
        result = run_program(
            L.decl("fd", L.call("open", L.strconst("/tmp/s"), 0x40)),
            L.expr_stmt(L.call("ioctl", L.var("fd"), 0x9001, 1)),   # SIO_SYMBOLIC
            L.decl("buf", L.call("malloc", 1)),
            L.decl("n", L.call("read", L.var("fd"), L.var("buf"), 1)),
            L.if_(L.gt(L.index(L.var("buf"), 0), 0x40), [L.ret(1)], [L.ret(0)]),
        )
        # Reads return fresh symbolic bytes even though the file is empty,
        # so the comparison forks into two paths.
        assert result.paths_completed == 2
