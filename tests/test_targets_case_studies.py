"""Tests for the case-study targets: curl, Bandicoot, memcached UDP hang,
lighttpd fragmentation (the paper's §7.3 case studies)."""

import pytest

from repro.engine import BugKind
from repro.targets import bandicoot, curl, lighttpd, memcached


class TestCurl(object):
    """§7.3.2: unmatched glob brace crashes curl."""

    def test_symbolic_suffix_finds_the_unmatched_brace_crash(self):
        result = curl.make_globbing_test().run_single()
        memory_errors = [b for b in result.bugs if b.kind == BugKind.MEMORY_ERROR]
        assert memory_errors
        # At least one crashing test case contains an unmatched glob opener.
        crashing_inputs = [b.test_case.input_bytes("url_suffix")
                           for b in memory_errors if b.test_case is not None]
        assert any(b"{" in data or b"[" in data for data in crashing_inputs)

    def test_well_formed_urls_do_not_crash(self):
        result = curl.make_globbing_test(symbolic_suffix=0).run_single()
        assert not result.bugs

    def test_reported_crashing_url_shape(self):
        assert curl.crashing_url().endswith(b"{")


class TestBandicoot(object):
    """§7.3.5: out-of-bounds read in GET handling."""

    def test_exhaustive_get_exploration_finds_oob_read(self):
        result = bandicoot.make_get_exploration_test().run_single()
        assert result.exhausted
        assert any(b.kind == BugKind.MEMORY_ERROR for b in result.bugs)

    def test_crash_requires_oversized_count(self):
        result = bandicoot.make_get_exploration_test().run_single()
        for bug in result.bugs:
            if bug.kind != BugKind.MEMORY_ERROR or bug.test_case is None:
                continue
            query = bug.test_case.input_bytes("query")
            # The count digit must exceed the smaller relation's cardinality.
            count = query[4] - ord("0")
            assert count > bandicoot.RELATION_B_TUPLES


class TestMemcachedUdpHang(object):
    """§7.3.3: infinite loop on certain UDP datagrams."""

    def test_hang_detected_via_instruction_limit(self):
        result = memcached.make_udp_hang_test().run_single()
        hangs = [b for b in result.bugs if b.kind == BugKind.INFINITE_LOOP]
        assert hangs

    def test_hang_input_contains_zero_size_record(self):
        result = memcached.make_udp_hang_test().run_single()
        for bug in result.bugs:
            if bug.kind == BugKind.INFINITE_LOOP and bug.test_case is not None:
                datagram = bug.test_case.input_bytes("datagram0")
                assert 0 in datagram

    def test_healthy_paths_terminate_quickly(self):
        result = memcached.make_udp_hang_test().run_single()
        healthy = [t for t in result.test_cases if not t.is_error]
        assert healthy
        assert all(t.path_length < 2_000 for t in healthy)


class TestLighttpdTable6(object):
    """§7.3.4 / Table 6: behaviour of each version under each fragmentation."""

    def _verdict(self, version, pattern):
        result = lighttpd.make_fragmentation_test(version, pattern).run_single()
        crashed = any(b.kind in (BugKind.MEMORY_ERROR, BugKind.ASSERTION_FAILURE)
                      for b in result.bugs)
        return "crash" if crashed else "ok"

    def test_whole_request_ok_everywhere(self):
        for version in (lighttpd.VERSION_1_4_12, lighttpd.VERSION_1_4_13,
                        lighttpd.VERSION_FIXED):
            assert self._verdict(version, lighttpd.PATTERN_WHOLE) == "ok"

    def test_split_terminator_crashes_only_prepatch(self):
        assert self._verdict(lighttpd.VERSION_1_4_12,
                             lighttpd.PATTERN_SPLIT_TERMINATOR) == "crash"
        assert self._verdict(lighttpd.VERSION_1_4_13,
                             lighttpd.PATTERN_SPLIT_TERMINATOR) == "ok"
        assert self._verdict(lighttpd.VERSION_FIXED,
                             lighttpd.PATTERN_SPLIT_TERMINATOR) == "ok"

    def test_many_small_fragments_crash_both_released_versions(self):
        assert self._verdict(lighttpd.VERSION_1_4_12,
                             lighttpd.PATTERN_MANY_SMALL) == "crash"
        assert self._verdict(lighttpd.VERSION_1_4_13,
                             lighttpd.PATTERN_MANY_SMALL) == "crash"
        assert self._verdict(lighttpd.VERSION_FIXED,
                             lighttpd.PATTERN_MANY_SMALL) == "ok"

    def test_symbolic_fragmentation_finds_prepatch_crash(self):
        test = lighttpd.make_symbolic_fragmentation_test(
            lighttpd.VERSION_1_4_12, frag_choice_limit=2)
        result = test.run_single(max_paths=200)
        assert any(b.kind == BugKind.MEMORY_ERROR for b in result.bugs)

    def test_symbolic_fragmentation_proves_fix_incomplete(self):
        # Scaled-down bookkeeping (3 slots) keeps the search small while
        # preserving the bug structure of 1.4.13: enough fragments overflow
        # the per-request chunk array.
        test = lighttpd.make_symbolic_fragmentation_test(
            lighttpd.VERSION_1_4_13, bookkeeping_slots=3, frag_choice_limit=2)
        result = test.run_single(max_paths=400)
        assert any(b.kind == BugKind.MEMORY_ERROR for b in result.bugs)

    def test_symbolic_fragmentation_fixed_version_clean(self):
        test = lighttpd.make_symbolic_fragmentation_test(
            lighttpd.VERSION_FIXED, bookkeeping_slots=3, frag_choice_limit=2)
        result = test.run_single(max_paths=400)
        assert not result.bugs
