"""The JSONL tracer, the worker-side buffer, and crash-tolerant loading."""

import json
import threading

import pytest

from repro.obs.trace import (
    NULL_TRACER,
    BufferTracer,
    NullTracer,
    Tracer,
    load_trace,
)


# The mechanics tests below emit deliberately minimal payloads (they test
# the envelope, the buffer, and crash tolerance -- not the event schemas),
# so they opt out of runtime validation explicitly; TestRuntimeValidation
# covers the validator itself.


class TestTracer:
    def test_emit_envelope(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with Tracer(str(path), validate=False) as tracer:
            tracer.emit("run_started", backend="single", workers=1)
            tracer.emit("round_completed", round=0, worker=3, skipme=None)
        events = load_trace(str(path))
        assert [e["event"] for e in events] == ["run_started",
                                                "round_completed"]
        first, second = events
        assert first["seq"] == 1 and second["seq"] == 2
        assert first["run"] == second["run"]
        assert second["ts"] >= first["ts"] >= 0.0
        assert second["round"] == 0 and second["worker"] == 3
        assert "skipme" not in second  # None-valued fields are dropped

    def test_truncates_previous_trace(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with Tracer(str(path), validate=False) as t:
            t.emit("a")
        with Tracer(str(path), validate=False) as t:
            t.emit("b")
        assert [e["event"] for e in load_trace(str(path))] == ["b"]

    def test_concurrent_emit_whole_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer(str(path), validate=False)

        def hammer(i):
            for _ in range(200):
                tracer.emit("tick", worker=i, payload="x" * 50)

        threads = [threading.Thread(target=hammer, args=(i,))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        tracer.close()
        events = load_trace(str(path))
        assert len(events) == 800
        seqs = [e["seq"] for e in events]
        assert seqs == sorted(seqs) and len(set(seqs)) == 800

    def test_ingest_preserves_worker_ts_as_wts(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with Tracer(str(path)) as tracer:
            tracer.ingest([{"ts": 1.25, "event": "span", "phase": "explore",
                            "duration": 0.5}], worker=4)
        (event,) = load_trace(str(path))
        assert event["event"] == "span"
        assert event["worker"] == 4
        assert event["wts"] == 1.25
        assert event["ts"] != 1.25  # re-stamped on the coordinator clock

    def test_span_emits_duration(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with Tracer(str(path)) as tracer:
            with tracer.span("explore", worker=1):
                pass
        (event,) = load_trace(str(path))
        assert event["event"] == "span" and event["phase"] == "explore"
        assert event["duration"] >= 0.0

    def test_emit_after_close_is_noop(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer(str(path))
        tracer.close()
        tracer.close()  # idempotent
        tracer.emit("late")
        assert load_trace(str(path)) == []


class TestNullTracer:
    def test_disabled_surface(self, tmp_path):
        assert NULL_TRACER.enabled is False
        assert isinstance(NULL_TRACER, NullTracer)
        NULL_TRACER.emit("anything", round=1)
        NULL_TRACER.ingest([{"event": "x"}])
        with NULL_TRACER.span("phase"):
            pass
        NULL_TRACER.close()


class TestBufferTracer:
    def test_drain_returns_and_resets(self):
        buf = BufferTracer(validate=False)
        buf.emit("a", worker=1)
        with buf.span("explore", budget=10):
            pass
        events = buf.drain()
        assert [e["event"] for e in events] == ["a", "span"]
        assert buf.drain() == []

    def test_capacity_drops_are_accounted(self):
        buf = BufferTracer(capacity=3, validate=False)
        for i in range(5):
            buf.emit("tick", round=i)
        events = buf.drain()
        assert [e["event"] for e in events] == [
            "tick", "tick", "tick", "trace_events_dropped"]
        assert events[-1]["count"] == 2
        # The drop counter resets with the drain.
        buf.emit("after")
        assert [e["event"] for e in buf.drain()] == ["after"]


class TestRuntimeValidation:
    def test_schema_validator_rejects_bad_payload(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with Tracer(str(path), validate=True) as tracer:
            with pytest.raises(ValueError, match="declared schema"):
                tracer.emit("jobs_recovered")  # missing required "jobs"
            tracer.emit("jobs_recovered", worker=1, jobs=3)
        assert [e["event"] for e in load_trace(str(path))] == [
            "jobs_recovered"]

    def test_schema_validator_rejects_unknown_key(self):
        buf = BufferTracer(validate=True)
        with pytest.raises(ValueError, match="declared schema"):
            buf.emit("worker_died", reason="x", draining=False, bogus=1)
        assert buf.drain() == []

    def test_env_switch_enables_validation(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_VALIDATE", "1")
        path = tmp_path / "t.jsonl"
        with Tracer(str(path)) as tracer:
            with pytest.raises(ValueError):
                tracer.emit("jobs_recovered")
        # "0" (and explicit validate=False) keep validation off.
        monkeypatch.setenv("REPRO_TRACE_VALIDATE", "0")
        with Tracer(str(path)) as tracer:
            tracer.emit("jobs_recovered")

    def test_custom_validator_callable(self):
        seen = []
        buf = BufferTracer(validate=lambda event, record:
                           seen.append((event, dict(record))))
        buf.emit("anything", worker=2)
        assert seen == [("anything", {"ts": seen[0][1]["ts"],
                                      "event": "anything", "worker": 2})]


class TestLoadTrace:
    def test_tolerates_torn_final_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with Tracer(str(path), validate=False) as tracer:
            tracer.emit("a")
            tracer.emit("b")
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"seq": 3, "event": "torn-mid-wri')
        events = load_trace(str(path))
        assert [e["event"] for e in events] == ["a", "b"]

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"event": "a"}\nnot json\n{"event": "b"}\n')
        with pytest.raises(json.JSONDecodeError):
            load_trace(str(path))
