"""Unit and property tests for mixed concrete/symbolic arithmetic."""

from hypothesis import given, settings, strategies as st

from repro.engine import values as V
from repro.lang.ast import BinaryOp, UnaryOp
from repro.solver import expr as E
from repro.solver.model import Model


BYTES = st.integers(min_value=0, max_value=255)
WORDS = st.integers(min_value=0, max_value=2**32 - 1)
BINOPS = st.sampled_from(list(BinaryOp))
UNOPS = st.sampled_from(list(UnaryOp))


def test_concrete_detection():
    assert V.is_concrete(4)
    assert not V.is_concrete(E.bv_symbol("x", 8))
    assert V.is_symbolic(E.bv_symbol("x", 8))


def test_width_of():
    assert V.width_of(7) == 32
    assert V.width_of(E.bv_symbol("x", 8)) == 8


def test_to_expr_widening_and_narrowing():
    sym = E.bv_symbol("x", 8)
    widened = V.to_expr(sym, 32)
    assert widened.width == 32
    narrowed = V.to_expr(E.bv_symbol("y", 32), 8)
    assert narrowed.width == 8
    assert V.to_expr(300, 8).value == 300 & 0xFF


def test_binop_stays_concrete():
    assert V.binop(BinaryOp.ADD, 2, 3) == 5
    assert isinstance(V.binop(BinaryOp.ADD, 2, 3), int)


def test_binop_symbolic_result():
    sym = E.bv_symbol("x", 8)
    result = V.binop(BinaryOp.ADD, sym, 1)
    assert V.is_symbolic(result)


def test_signed_comparison_semantics():
    # 0xFFFFFFFF is -1 as a signed 32-bit value.
    assert V.concrete_binop(BinaryOp.LT, 0xFFFFFFFF, 1) == 1
    assert V.concrete_binop(BinaryOp.GT, 0xFFFFFFFF, 1) == 0


def test_division_by_zero_conventions():
    assert V.concrete_binop(BinaryOp.DIV, 5, 0) == 0xFFFFFFFF
    assert V.concrete_binop(BinaryOp.MOD, 5, 0) == 5


def test_logical_operators_concrete():
    assert V.concrete_binop(BinaryOp.LAND, 2, 3) == 1
    assert V.concrete_binop(BinaryOp.LAND, 0, 3) == 0
    assert V.concrete_binop(BinaryOp.LOR, 0, 0) == 0


def test_unop_concrete():
    assert V.unop(UnaryOp.NEG, 1) == 0xFFFFFFFF
    assert V.unop(UnaryOp.NOT, 0) == 1
    assert V.unop(UnaryOp.NOT, 5) == 0
    assert V.unop(UnaryOp.BNOT, 0) == 0xFFFFFFFF


def test_truth_and_false_conditions():
    sym = E.bv_symbol("x", 8)
    truth = V.truth_condition(sym)
    falsity = V.false_condition(sym)
    assert E.evaluate(truth, {sym: 3}) is True
    assert E.evaluate(truth, {sym: 0}) is False
    assert E.evaluate(falsity, {sym: 0}) is True


def test_byte_value_normalization():
    assert V.byte_value(0x1FF) == 0xFF
    wide = E.bv_symbol("w", 32)
    assert V.byte_value(wide).width == 8
    narrow = E.bv_symbol("n", 8)
    assert V.byte_value(narrow) is narrow


@settings(max_examples=200, deadline=None)
@given(op=BINOPS, a=BYTES, b=BYTES)
def test_symbolic_binop_matches_concrete_binop(op, a, b):
    """Evaluating the symbolic encoding equals direct concrete computation."""
    sym_a = E.bv_symbol("a", 8)
    sym_b = E.bv_symbol("b", 8)
    symbolic = V.symbolic_binop(op, sym_a, sym_b)
    model = Model({sym_a: a, sym_b: b})
    evaluated = int(model.evaluate(symbolic))
    expected = V.concrete_binop(op, a, b, width=32)
    assert evaluated == expected


@settings(max_examples=100, deadline=None)
@given(op=UNOPS, a=WORDS)
def test_symbolic_unop_matches_concrete_unop(op, a):
    sym = E.bv_symbol("a", 32)
    symbolic = V.unop(op, sym)
    model = Model({sym: a})
    assert int(model.evaluate(symbolic)) == V.unop(op, a)


@settings(max_examples=100, deadline=None)
@given(a=BYTES, b=BYTES)
def test_mixed_operands_match(a, b):
    """concrete op symbolic == fully concrete result."""
    sym_b = E.bv_symbol("b", 8)
    result = V.binop(BinaryOp.SUB, a, sym_b)
    model = Model({sym_b: b})
    assert int(model.evaluate(result)) == V.concrete_binop(BinaryOp.SUB, a, b, width=32)
