"""Unit tests for the symbolic interpreter: forking, errors, calls, natives."""

import pytest

from repro import lang as L
from repro.engine import BugKind, SymbolicExecutor
from repro.engine.config import EngineConfig

from conftest import make_executor


def run(program, posix=False, config=None, **kwargs):
    executor = make_executor(program, posix=posix, config=config)
    return executor.run(**kwargs), executor


class TestConcreteExecution:
    def test_arithmetic_and_locals(self):
        program = L.program("p", L.func(
            "main", [],
            L.decl("a", 6),
            L.decl("b", L.mul(L.var("a"), 7)),
            L.ret(L.var("b")),
        ))
        result, _ = run(program)
        assert result.paths_completed == 1
        assert result.test_cases[0].exit_code == 42

    def test_concrete_branch_does_not_fork(self):
        program = L.program("p", L.func(
            "main", [],
            L.decl("x", 1),
            L.if_(L.eq(L.var("x"), 1), [L.ret(10)], [L.ret(20)]),
        ))
        result, _ = run(program)
        assert result.paths_completed == 1
        assert result.test_cases[0].exit_code == 10

    def test_while_loop(self):
        program = L.program("p", L.func(
            "main", [],
            L.decl("i", 0),
            L.decl("total", 0),
            L.while_(L.lt(L.var("i"), 5),
                     L.assign("total", L.add(L.var("total"), L.var("i"))),
                     L.assign("i", L.add(L.var("i"), 1))),
            L.ret(L.var("total")),
        ))
        result, _ = run(program)
        assert result.test_cases[0].exit_code == 10

    def test_function_call_and_return_value(self):
        program = L.program(
            "p",
            L.func("square", ["v"], L.ret(L.mul(L.var("v"), L.var("v")))),
            L.func("main", [], L.ret(L.call("square", 9))),
        )
        result, _ = run(program)
        assert result.test_cases[0].exit_code == 81

    def test_recursion(self):
        program = L.program(
            "p",
            L.func("fact", ["n"],
                   L.if_(L.le(L.var("n"), 1), [L.ret(1)]),
                   L.ret(L.mul(L.var("n"), L.call("fact", L.sub(L.var("n"), 1))))),
            L.func("main", [], L.ret(L.call("fact", 5))),
        )
        result, _ = run(program)
        assert result.test_cases[0].exit_code == 120

    def test_memory_store_and_load(self):
        program = L.program("p", L.func(
            "main", [],
            L.decl("buf", L.call("malloc", 4)),
            L.store(L.var("buf"), 2, 0x7E),
            L.ret(L.index(L.var("buf"), 2)),
        ))
        result, _ = run(program)
        assert result.test_cases[0].exit_code == 0x7E

    def test_string_constant_access(self):
        program = L.program("p", L.func(
            "main", [],
            L.decl("s", L.strconst("AZ")),
            L.ret(L.index(L.var("s"), 1)),
        ))
        result, _ = run(program)
        assert result.test_cases[0].exit_code == ord("Z")


class TestSymbolicForking:
    def test_two_way_fork(self, single_branch):
        result, _ = run(single_branch)
        assert result.paths_completed == 2
        exit_codes = sorted(t.exit_code for t in result.test_cases)
        assert exit_codes == [0, 1]

    def test_test_cases_reproduce_paths(self, single_branch):
        result, _ = run(single_branch)
        for case in result.test_cases:
            data = case.input_bytes("input")
            if case.exit_code == 1:
                assert data == b"!"
            else:
                assert data != b"!"

    def test_exhaustive_path_count(self, branchy):
        result, _ = run(branchy)
        assert result.paths_completed == 27  # 3 choices ** 3 bytes
        assert result.exhausted

    def test_infeasible_branch_not_explored(self):
        program = L.program("p", L.func(
            "main", [],
            L.decl("buf", L.call("cloud9_symbolic_buffer", 1, L.strconst("b"))),
            L.decl("x", L.index(L.var("buf"), 0)),
            L.if_(L.lt(L.var("x"), 10), [
                L.if_(L.gt(L.var("x"), 20), [L.ret(99)]),  # contradiction
                L.ret(1),
            ]),
            L.ret(0),
        ))
        result, _ = run(program)
        assert result.paths_completed == 2
        assert all(t.exit_code != 99 for t in result.test_cases)

    def test_assume_constrains_inputs(self):
        program = L.program("p", L.func(
            "main", [],
            L.decl("buf", L.call("cloud9_symbolic_buffer", 1, L.strconst("b"))),
            L.decl("x", L.index(L.var("buf"), 0)),
            L.expr_stmt(L.call("c9_assume", L.gt(L.var("x"), 100))),
            L.if_(L.gt(L.var("x"), 100), [L.ret(1)], [L.ret(0)]),
        ))
        result, _ = run(program)
        assert result.paths_completed == 1
        assert result.test_cases[0].exit_code == 1


class TestBugDetection:
    def test_assert_failure_with_symbolic_condition(self):
        program = L.program("p", L.func(
            "main", [],
            L.decl("buf", L.call("cloud9_symbolic_buffer", 1, L.strconst("b"))),
            L.assert_(L.ne(L.index(L.var("buf"), 0), 0x42), "no B allowed"),
            L.ret(0),
        ))
        result, _ = run(program)
        assert any(b.kind == BugKind.ASSERTION_FAILURE for b in result.bugs)
        failing = [b for b in result.bugs if b.kind == BugKind.ASSERTION_FAILURE][0]
        assert failing.test_case.input_bytes("b") == b"\x42"

    def test_assert_that_always_holds(self):
        program = L.program("p", L.func(
            "main", [],
            L.decl("x", 1),
            L.assert_(L.eq(L.var("x"), 1)),
            L.ret(0),
        ))
        result, _ = run(program)
        assert not result.bugs

    def test_out_of_bounds_concrete_read(self):
        program = L.program("p", L.func(
            "main", [],
            L.decl("buf", L.call("malloc", 2)),
            L.ret(L.index(L.var("buf"), 5)),
        ))
        result, _ = run(program)
        assert any(b.kind == BugKind.MEMORY_ERROR for b in result.bugs)

    def test_out_of_bounds_symbolic_write_forks_error_path(self):
        program = L.program("p", L.func(
            "main", [],
            L.decl("buf", L.call("malloc", 4)),
            L.decl("idx", L.call("cloud9_symbolic_buffer", 1, L.strconst("i"))),
            L.store(L.var("buf"), L.index(L.var("idx"), 0), 1),
            L.ret(0),
        ))
        result, _ = run(program)
        kinds = {b.kind for b in result.bugs}
        assert BugKind.MEMORY_ERROR in kinds
        # The in-bounds continuation also completes.
        assert any(not t.is_error for t in result.test_cases)

    def test_invalid_free(self):
        program = L.program("p", L.func(
            "main", [],
            L.decl("buf", L.call("malloc", 4)),
            L.expr_stmt(L.call("free", L.var("buf"))),
            L.expr_stmt(L.call("free", L.var("buf"))),
            L.ret(0),
        ))
        result, _ = run(program)
        assert any(b.kind == BugKind.INVALID_FREE for b in result.bugs)

    def test_abort_reported(self):
        program = L.program("p", L.func(
            "main", [], L.expr_stmt(L.call("abort")), L.ret(0)))
        result, _ = run(program)
        assert any(b.kind == BugKind.ABORT for b in result.bugs)

    def test_stack_overflow_detection(self):
        program = L.program(
            "p",
            L.func("loop", ["n"], L.ret(L.call("loop", L.add(L.var("n"), 1)))),
            L.func("main", [], L.ret(L.call("loop", 0))),
        )
        result, _ = run(program, config=EngineConfig(max_call_depth=32))
        assert any(b.kind == BugKind.STACK_OVERFLOW for b in result.bugs)

    def test_infinite_loop_detection(self):
        program = L.program("p", L.func(
            "main", [],
            L.decl("x", 1),
            L.while_(L.eq(L.var("x"), 1), L.assign("x", 1)),
            L.ret(0),
        ))
        result, _ = run(program,
                        config=EngineConfig(max_instructions_per_path=500))
        assert any(b.kind == BugKind.INFINITE_LOOP for b in result.bugs)


class TestNativeInterface:
    def test_unknown_native_raises_engine_error(self):
        from repro.engine.interpreter import EngineInternalError

        program = L.program("p", L.func(
            "main", [], L.ret(L.call("no_such_function"))))
        executor = make_executor(program)
        with pytest.raises(EngineInternalError):
            executor.run()

    def test_memcpy_and_strlen(self):
        program = L.program("p", L.func(
            "main", [],
            L.decl("src", L.strconst("hello")),
            L.decl("dst", L.call("malloc", 8)),
            L.expr_stmt(L.call("memcpy", L.var("dst"), L.var("src"), 6)),
            L.ret(L.call("strlen", L.var("dst"))),
        ))
        result, _ = run(program)
        assert result.test_cases[0].exit_code == 5

    def test_memset(self):
        program = L.program("p", L.func(
            "main", [],
            L.decl("buf", L.call("malloc", 4)),
            L.expr_stmt(L.call("memset", L.var("buf"), 9, 4)),
            L.ret(L.index(L.var("buf"), 3)),
        ))
        result, _ = run(program)
        assert result.test_cases[0].exit_code == 9

    def test_strcmp(self):
        program = L.program("p", L.func(
            "main", [],
            L.ret(L.call("strcmp", L.strconst("abc"), L.strconst("abc"))),
        ))
        result, _ = run(program)
        assert result.test_cases[0].exit_code == 0

    def test_max_heap_option_limits_malloc(self):
        program = L.program("p", L.func(
            "main", [],
            L.expr_stmt(L.call("cloud9_set_max_heap", 16)),
            L.decl("a", L.call("malloc", 8)),
            L.decl("b", L.call("malloc", 64)),
            L.if_(L.eq(L.var("b"), 0), [L.ret(1)]),
            L.ret(0),
        ))
        result, _ = run(program, posix=True)
        assert result.test_cases[0].exit_code == 1

    def test_exit_terminates_state(self):
        program = L.program("p", L.func(
            "main", [],
            L.expr_stmt(L.call("exit", 7)),
            L.ret(0),
        ))
        result, _ = run(program)
        assert result.paths_completed == 1
        assert result.test_cases[0].exit_code == 7
