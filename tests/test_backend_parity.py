"""Cross-backend parity: one round engine, three backends, same answers.

The regression test for the drift class the shared
:class:`~repro.cluster.core.CoordinatorCore` eliminates: the same spec run
under identical limits on the ``cluster``, ``threaded`` and ``process``
backends must complete the same paths, cover the same lines, report the
same bugs, and speak the same trace-event vocabulary.  Before the core was
extracted these were three hand-synchronized copies of the §3 protocol and
each of these properties drifted at least once.
"""

import multiprocessing

import pytest

from repro.api import ExplorationLimits
from repro.cluster import ClusterConfig, ThreadedCloud9Cluster
from repro.distrib import specs
from repro.distrib.cluster import ProcessCloud9Cluster, ProcessClusterConfig
from repro.obs.trace import load_trace

fork_available = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(
    not fork_available,
    reason="process-backed tests need the fork start method")

SPEC_NAME = "printf"
SPEC_PARAMS = {"format_length": 2}
NUM_WORKERS = 2
INSTRUCTIONS_PER_ROUND = 300
LIMITS_KWARGS = dict(max_rounds=80)

#: Worker-local events (explore spans, forwarded engine events) ride along
#: on process-backend status replies only; they are not part of the
#: coordinator protocol whose vocabulary the shared core pins.
WORKER_LOCAL_EVENTS = {"span", "worker_event"}


def _run_backend(backend, trace_path):
    limits = ExplorationLimits(trace_path=str(trace_path), **LIMITS_KWARGS)
    if backend == "process":
        config = ProcessClusterConfig(
            num_workers=NUM_WORKERS,
            instructions_per_round=INSTRUCTIONS_PER_ROUND)
        cluster = ProcessCloud9Cluster(SPEC_NAME, SPEC_PARAMS, config=config)
        return cluster.run(limits=limits)
    test = specs.resolve_test(SPEC_NAME, **SPEC_PARAMS)
    config = ClusterConfig(num_workers=NUM_WORKERS,
                           instructions_per_round=INSTRUCTIONS_PER_ROUND)
    cluster_class = ThreadedCloud9Cluster if backend == "threaded" else None
    cluster = test.build_cluster(config, cluster_class=cluster_class)
    return cluster.run(limits=limits)


@pytest.fixture(scope="module")
def backend_runs(tmp_path_factory):
    """Run every backend once; the assertions below slice the results."""
    runs = {}
    base = tmp_path_factory.mktemp("parity")
    backends = ["cluster", "threaded"]
    if fork_available:
        backends.append("process")
    for backend in backends:
        trace_path = base / ("%s.jsonl" % backend)
        result = _run_backend(backend, trace_path)
        runs[backend] = (result, load_trace(str(trace_path)))
    return runs


def _pairs(runs):
    names = sorted(runs)
    return [(a, b) for i, a in enumerate(names) for b in names[i + 1:]]


class TestResultParity:
    def test_every_backend_exhausts(self, backend_runs):
        for backend, (result, _) in backend_runs.items():
            assert result.exhausted, backend

    def test_paths_identical(self, backend_runs):
        for a, b in _pairs(backend_runs):
            assert (backend_runs[a][0].paths_completed
                    == backend_runs[b][0].paths_completed), (a, b)

    def test_coverage_identical(self, backend_runs):
        for a, b in _pairs(backend_runs):
            assert (backend_runs[a][0].covered_lines
                    == backend_runs[b][0].covered_lines), (a, b)

    def test_bugs_identical(self, backend_runs):
        for a, b in _pairs(backend_runs):
            assert (backend_runs[a][0].bug_summaries()
                    == backend_runs[b][0].bug_summaries()), (a, b)


class TestTraceVocabularyParity:
    def test_backend_stamp(self, backend_runs):
        for backend, (_, events) in backend_runs.items():
            assert events[0]["event"] == "run_started", backend
            assert events[0]["backend"] == backend

    def test_event_vocabulary_identical(self, backend_runs):
        vocabularies = {
            backend: {e["event"] for e in events} - WORKER_LOCAL_EVENTS
            for backend, (_, events) in backend_runs.items()}
        for a, b in _pairs(backend_runs):
            assert vocabularies[a] == vocabularies[b], (a, b)

    def test_round_completed_keys_identical(self, backend_runs):
        envelope = {"seq", "ts", "event", "run"}
        key_sets = {}
        for backend, (_, events) in backend_runs.items():
            rounds = [e for e in events if e["event"] == "round_completed"]
            assert rounds, backend
            key_sets[backend] = frozenset(
                frozenset(set(e) - envelope) for e in rounds)
        for a, b in _pairs(backend_runs):
            assert key_sets[a] == key_sets[b], (a, b)

    def test_run_finished_reports_round_time_percentiles(self, backend_runs):
        for backend, (_, events) in backend_runs.items():
            finished = events[-1]
            assert finished["event"] == "run_finished", backend
            assert finished["round_time_p50"] >= 0.0, backend
            assert finished["round_time_p99"] >= finished["round_time_p50"], backend

    def test_solver_query_reports_latency_percentiles(self, backend_runs):
        """Worker solvers ship their latency histograms home on every
        backend (FinalReply.latency carries them across the process
        boundary), so the final solver_query event always has p50/p99."""
        for backend, (_, events) in backend_runs.items():
            queries = [e for e in events if e["event"] == "solver_query"]
            assert queries, backend
            final = queries[-1]
            assert final["latency_count"] > 0, backend
            assert final["latency_p99"] >= final["latency_p50"] >= 0.0, backend


@needs_fork
class TestProcessSmoke:
    """The CI coordinator-parity job's entry point: the process backend
    agrees with the in-process reference run."""

    def test_process_matches_cluster(self, backend_runs):
        assert "process" in backend_runs
        reference, _ = backend_runs["cluster"]
        process, _ = backend_runs["process"]
        assert process.paths_completed == reference.paths_completed
        assert process.covered_lines == reference.covered_lines
        assert process.bug_summaries() == reference.bug_summaries()
